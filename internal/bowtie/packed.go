// Packed-sequence alignment path: a seed index over 2-bit packed
// contigs and an aligner whose verification is the word-wise
// Packed.MismatchRange instead of the byte loop. Seed votes, candidate
// ordering, the mismatch-budget selection rule, and every stats
// counter mirror the ASCII aligner exactly, so alignments and metered
// work are byte-identical — only resident sequence bytes shrink 4×.
//
// Both backends are provided. HashSeeds keeps a seed-kmer hash table;
// FMIndex builds a packed FM-index (fm.PackedIndex) over the same
// contig-plus-separator text layout as the ASCII FM backend and
// backward-searches seed k-mers directly from their packed form —
// no ASCII text is ever materialised on this path.

package bowtie

import (
	"fmt"
	"sort"

	"gotrinity/internal/fm"
	"gotrinity/internal/kmer"
	"gotrinity/internal/omp"
	"gotrinity/internal/seq"
)

// PackedIndex locates seed k-mers in packed target contigs through
// either the seed hash table or the packed FM-index.
type PackedIndex struct {
	opt     Options
	contigs []seq.PackedRecord
	seeds   map[kmer.Kmer][]hit // HashSeeds backend
	fmix    *fm.PackedIndex     // FMIndex backend
	offsets []int               // contig start in the FM text
	// Bases is the total indexed bases, used by cost models.
	Bases int
}

// NewPackedIndex builds a seed-location index over packed contigs with
// the configured backend.
func NewPackedIndex(contigs []seq.PackedRecord, opt Options) (*PackedIndex, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	ix := &PackedIndex{opt: opt, contigs: contigs}
	for ci := range contigs {
		ix.Bases += contigs[ci].Seq.Len()
	}
	switch opt.Backend {
	case HashSeeds:
		ix.seeds = make(map[kmer.Kmer][]hit)
		for ci := range contigs {
			it := kmer.NewPackedIterator(contigs[ci].Seq, opt.SeedLen)
			for {
				m, pos, ok := it.Next()
				if !ok {
					break
				}
				ix.seeds[m] = append(ix.seeds[m], hit{contig: int32(ci), pos: int32(pos)})
			}
		}
	case FMIndex:
		// Same text layout as the ASCII FM backend: every contig is
		// followed by one separator, so global position = offset + local.
		segs := make([]seq.Packed, len(contigs))
		ix.offsets = make([]int, len(contigs))
		off := 0
		for ci := range contigs {
			segs[ci] = contigs[ci].Seq
			ix.offsets[ci] = off
			off += contigs[ci].Seq.Len() + 1
		}
		fmix, err := fm.NewPacked(segs, fm.BuildOptions{Workers: opt.Threads})
		if err != nil {
			return nil, fmt.Errorf("bowtie: packed fm build: %w", err)
		}
		ix.fmix = fmix
	default:
		return nil, fmt.Errorf("bowtie: unknown backend %d", opt.Backend)
	}
	return ix, nil
}

// lookupSeed appends the hits of seed m to dst. posBuf is the caller's
// reusable position scratch for the FM path, so a warm lookup performs
// no allocations on either backend.
func (ix *PackedIndex) lookupSeed(m kmer.Kmer, dst []hit, posBuf *[]int) []hit {
	if ix.seeds != nil {
		return append(dst, ix.seeds[m]...)
	}
	*posBuf = ix.fmix.AppendLocateKmer((*posBuf)[:0], m, ix.opt.SeedLen)
	for _, p := range *posBuf {
		// Owning contig: greatest ci with offsets[ci] <= p. Matches can
		// never straddle the separator, so p maps inside one contig.
		lo, hi := 0, len(ix.offsets)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if ix.offsets[mid] <= p {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		dst = append(dst, hit{contig: int32(lo), pos: int32(p - ix.offsets[lo])})
	}
	return dst
}

// MemoryFootprint estimates the index's resident bytes (seed table or
// FM structures, matching the ASCII accounting).
func (ix *PackedIndex) MemoryFootprint() int {
	if ix.fmix != nil {
		return ix.fmix.MemoryFootprint() + 8*len(ix.offsets)
	}
	n := 0
	for _, hits := range ix.seeds {
		n += 8 + 8*len(hits)
	}
	return n
}

// Contigs returns the indexed packed target records.
func (ix *PackedIndex) Contigs() []seq.PackedRecord { return ix.contigs }

// PackedAligner runs packed reads against a packed index.
type PackedAligner struct {
	ix *PackedIndex
}

// NewPackedAligner wraps a packed index.
func NewPackedAligner(ix *PackedIndex) *PackedAligner { return &PackedAligner{ix: ix} }

// AlignRead aligns a single packed read — the packed twin of
// Aligner.AlignRead, with identical strand order, tie-breaking, and
// stats accounting.
func (a *PackedAligner) AlignRead(rec *seq.PackedRecord, st *Stats) (Alignment, bool) {
	if st != nil {
		st.Reads++
	}
	if rec.Seq.Len() < a.ix.opt.MinAlignLen {
		return Alignment{}, false
	}
	best, ok := a.alignOneStrand(rec.Seq, false, st)
	rc := rec.Seq.ReverseComplement()
	if alt, ok2 := a.alignOneStrand(rc, true, st); ok2 && (!ok || alt.Mismatches < best.Mismatches) {
		best, ok = alt, true
	}
	if !ok {
		return Alignment{}, false
	}
	best.ReadID = rec.ID
	best.ReadLen = rec.Seq.Len()
	best.ContigID = a.ix.contigs[best.Contig].ID
	if st != nil {
		st.Aligned++
	}
	return best, true
}

func (a *PackedAligner) alignOneStrand(read seq.Packed, reverse bool, st *Stats) (Alignment, bool) {
	opt := a.ix.opt
	votes := make(map[diagonal]int)
	it := kmer.NewPackedIterator(read, opt.SeedLen)
	nextAccept := 0
	var hitBuf []hit
	var posBuf []int
	for {
		m, pos, ok := it.Next()
		if !ok {
			break
		}
		if pos < nextAccept {
			continue
		}
		nextAccept = pos + opt.SeedStride
		if st != nil {
			st.SeedProbes++
		}
		hitBuf = a.ix.lookupSeed(m, hitBuf[:0], &posBuf)
		for _, h := range hitBuf {
			votes[diagonal{h.contig, h.pos - int32(pos)}]++
		}
	}
	cands := make([]diagonal, 0, len(votes))
	for d := range votes {
		cands = append(cands, d)
	}
	sort.Slice(cands, func(i, j int) bool {
		idI := a.ix.contigs[cands[i].contig].ID
		idJ := a.ix.contigs[cands[j].contig].ID
		if idI != idJ {
			return idI < idJ
		}
		return cands[i].offset < cands[j].offset
	})
	bestMM := opt.MaxMismatch + 1
	var best Alignment
	found := false
	for _, d := range cands {
		contig := a.ix.contigs[d.contig].Seq
		start := int(d.offset)
		if start < 0 || start+read.Len() > contig.Len() {
			continue
		}
		// The byte loop stops once mm reaches bestMM; MismatchRange with
		// budget=bestMM returns some mm >= bestMM in exactly those cases,
		// so the mm < bestMM selection below decides identically.
		mm, _ := contig.MismatchRange(start, read, 0, read.Len(), bestMM)
		if st != nil {
			st.BasesCompared += int64(read.Len())
		}
		if mm < bestMM {
			bestMM = mm
			best = Alignment{Contig: int(d.contig), Pos: start, Reverse: reverse, Mismatches: mm}
			found = true
		}
	}
	return best, found && bestMM <= opt.MaxMismatch
}

// AlignAll aligns every packed read with the configured thread count —
// the packed twin of Aligner.AlignAll.
func (a *PackedAligner) AlignAll(reads []seq.PackedRecord) ([]Alignment, Stats) {
	threads := a.ix.opt.Threads
	perThread := make([]Stats, threads)
	results := make([]*Alignment, len(reads))
	prof := omp.ParallelForProfiled(len(reads), threads, omp.Schedule{Kind: omp.Dynamic, Chunk: 64},
		func(i, tid int) {
			if al, ok := a.AlignRead(&reads[i], &perThread[tid]); ok {
				alCopy := al
				results[i] = &alCopy
			}
		})
	var out []Alignment
	agg := Stats{MakespanSec: prof.Makespan().Seconds(), ThreadImbalance: prof.Imbalance()}
	for _, r := range results {
		if r != nil {
			out = append(out, *r)
		}
	}
	for _, st := range perThread {
		agg.Reads += st.Reads
		agg.Aligned += st.Aligned
		agg.SeedProbes += st.SeedProbes
		agg.BasesCompared += st.BasesCompared
	}
	return out, agg
}
