package bowtie

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SAM flag bits used by the writer.
const (
	flagUnmapped = 0x4
	flagReverse  = 0x10
)

// SAMHeaderEntry describes one reference sequence for the @SQ header.
type SAMHeaderEntry struct {
	Name   string
	Length int
}

// WriteSAMRecords renders a minimal, sorted SAM file.
func WriteSAMRecords(w io.Writer, refs []SAMHeaderEntry, alignments []Alignment) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "@HD\tVN:1.6\tSO:unsorted\n"); err != nil {
		return err
	}
	for _, r := range refs {
		if _, err := fmt.Fprintf(bw, "@SQ\tSN:%s\tLN:%d\n", r.Name, r.Length); err != nil {
			return err
		}
	}
	sorted := append([]Alignment(nil), alignments...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].ContigID != sorted[j].ContigID {
			return sorted[i].ContigID < sorted[j].ContigID
		}
		return sorted[i].Pos < sorted[j].Pos
	})
	for _, a := range sorted {
		flag := 0
		if a.Reverse {
			flag |= flagReverse
		}
		mapq := 42 - 10*a.Mismatches
		if mapq < 0 {
			mapq = 0
		}
		if _, err := fmt.Fprintf(bw, "%s\t%d\t%s\t%d\t%d\t%dM\t*\t0\t0\t*\t*\tNM:i:%d\n",
			a.ReadID, flag, a.ContigID, a.Pos+1, mapq, a.ReadLen, a.Mismatches); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSAM parses a SAM stream produced by WriteSAMRecords (headers are
// skipped; unmapped records are dropped). Contig indices are not
// resolved — callers holding the contig set can map ContigID back.
func ReadSAM(r io.Reader) ([]Alignment, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var out []Alignment
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if line == "" || line[0] == '@' {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 11 {
			return nil, fmt.Errorf("bowtie: sam line %d: %d fields", lineno, len(fields))
		}
		flag, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("bowtie: sam line %d: bad flag %q", lineno, fields[1])
		}
		if flag&flagUnmapped != 0 || fields[2] == "*" {
			continue
		}
		pos, err := strconv.Atoi(fields[3])
		if err != nil || pos < 1 {
			return nil, fmt.Errorf("bowtie: sam line %d: bad pos %q", lineno, fields[3])
		}
		a := Alignment{
			ReadID:   fields[0],
			ContigID: fields[2],
			Pos:      pos - 1,
			Reverse:  flag&flagReverse != 0,
		}
		// CIGAR "<n>M" carries the read length; NM:i carries mismatches.
		if c := fields[5]; strings.HasSuffix(c, "M") {
			if n, err := strconv.Atoi(c[:len(c)-1]); err == nil {
				a.ReadLen = n
			}
		}
		for _, f := range fields[11:] {
			if v, ok := strings.CutPrefix(f, "NM:i:"); ok {
				if n, err := strconv.Atoi(v); err == nil {
					a.Mismatches = n
				}
			}
		}
		out = append(out, a)
	}
	return out, sc.Err()
}
