// Package bowtie is the read-to-contig aligner of the pipeline,
// standing in for the Bowtie short-read aligner that Chrysalis invokes
// to map input reads onto Inchworm contigs. It is a seed-and-extend
// aligner: contigs are indexed by seed k-mers, each read's seeds vote
// for (contig, diagonal) candidates, and candidates are verified by
// ungapped comparison with a mismatch budget. Both strands are tried,
// as Bowtie does.
//
// The paper parallelises Bowtie without source changes by splitting
// the *target* contig FASTA across nodes with PyFasta (§III-A); the
// distributed driver here partitions the index the same way, so every
// node aligns all reads against its own contig subset.
package bowtie

import (
	"fmt"
	"sort"
	"sync"

	"gotrinity/internal/fm"
	"gotrinity/internal/kmer"
	"gotrinity/internal/omp"
	"gotrinity/internal/seq"
)

// Backend selects the seed-location data structure.
type Backend int

const (
	// HashSeeds indexes seed k-mers in a hash table (fast build, larger
	// memory).
	HashSeeds Backend = iota
	// FMIndex locates seeds with a BWT/FM-index over the concatenated
	// contigs — the data structure the real Bowtie uses ("ultrafast and
	// memory-efficient"). Slower to build, smaller resident footprint.
	FMIndex
)

// Options configures index construction and alignment.
type Options struct {
	SeedLen     int     // seed k-mer length (default 16)
	SeedStride  int     // distance between consecutive read seeds (default 8)
	MaxMismatch int     // mismatch budget for verification (default 3)
	MinAlignLen int     // shortest read the aligner will attempt (default SeedLen)
	Threads     int     // alignment worker threads (default GOMAXPROCS)
	Backend     Backend // seed location backend (default HashSeeds)
}

func (o *Options) normalize() error {
	if o.SeedLen <= 0 {
		o.SeedLen = 16
	}
	if o.SeedLen > kmer.MaxK {
		return fmt.Errorf("bowtie: seed length %d exceeds %d", o.SeedLen, kmer.MaxK)
	}
	if o.SeedStride <= 0 {
		o.SeedStride = 8
	}
	if o.MaxMismatch < 0 {
		o.MaxMismatch = 3
	}
	if o.MinAlignLen <= 0 {
		o.MinAlignLen = o.SeedLen
	}
	if o.Threads <= 0 {
		o.Threads = omp.DefaultThreads()
	}
	return nil
}

// hit is one indexed seed occurrence.
type hit struct {
	contig int32
	pos    int32
}

// Index maps seed k-mers to their occurrences in the target contigs,
// either through a hash table or an FM-index over the concatenated
// contig text.
type Index struct {
	opt     Options
	contigs []seq.Record
	seeds   map[kmer.Kmer][]hit
	// FM backend state: concatenated text with 'N' separators, the
	// index, and the start offset of each contig within the text.
	fmix    *fm.Index
	offsets []int
	// Bases is the total indexed bases, used by cost models.
	Bases int
}

// NewIndex builds a seed index over the given contigs.
func NewIndex(contigs []seq.Record, opt Options) (*Index, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	ix := &Index{opt: opt, contigs: contigs}
	for ci := range contigs {
		ix.Bases += len(contigs[ci].Seq)
	}
	switch opt.Backend {
	case HashSeeds:
		ix.seeds = make(map[kmer.Kmer][]hit)
		for ci := range contigs {
			it := kmer.NewIterator(contigs[ci].Seq, opt.SeedLen)
			for {
				m, pos, ok := it.Next()
				if !ok {
					break
				}
				ix.seeds[m] = append(ix.seeds[m], hit{contig: int32(ci), pos: int32(pos)})
			}
		}
	case FMIndex:
		var text []byte
		for ci := range contigs {
			ix.offsets = append(ix.offsets, len(text))
			text = append(text, contigs[ci].Seq...)
			text = append(text, 'N') // separator: ACGT seeds cannot cross it
		}
		if len(text) == 0 {
			text = []byte{'N'}
		}
		f, err := fm.New(text)
		if err != nil {
			return nil, fmt.Errorf("bowtie: fm backend: %w", err)
		}
		ix.fmix = f
	default:
		return nil, fmt.Errorf("bowtie: unknown backend %d", opt.Backend)
	}
	return ix, nil
}

// lookupSeed returns the occurrences of seed m across the contigs.
func (ix *Index) lookupSeed(m kmer.Kmer) []hit {
	if ix.seeds != nil {
		return ix.seeds[m]
	}
	pattern := []byte(m.Decode(ix.opt.SeedLen)) // ascii-ok: FM backend operates on ASCII text by construction
	positions := ix.fmix.Locate(pattern)
	if len(positions) == 0 {
		return nil
	}
	hits := make([]hit, 0, len(positions))
	for _, p := range positions {
		// Binary search the owning contig by offset.
		lo, hi := 0, len(ix.offsets)-1
		for lo < hi {
			mid := (lo + hi + 1) / 2
			if ix.offsets[mid] <= p {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		hits = append(hits, hit{contig: int32(lo), pos: int32(p - ix.offsets[lo])})
	}
	return hits
}

// MemoryFootprint estimates the index's resident bytes, for the
// hash-vs-FM trade-off benchmark.
func (ix *Index) MemoryFootprint() int {
	if ix.fmix != nil {
		return ix.fmix.MemoryFootprint() + 8*len(ix.offsets)
	}
	n := 0
	for _, hits := range ix.seeds {
		n += 8 + 8*len(hits) // key + hit entries
	}
	return n
}

// Contigs returns the indexed target records.
func (ix *Index) Contigs() []seq.Record { return ix.contigs }

// Alignment is one reported read placement.
type Alignment struct {
	ReadID     string
	ReadLen    int
	Contig     int // index into the aligner's contig set
	ContigID   string
	Pos        int  // 0-based leftmost position on the contig
	Reverse    bool // read aligned as its reverse complement
	Mismatches int
}

// Stats meters the work an alignment pass performed.
type Stats struct {
	Reads         int64 // reads processed
	Aligned       int64 // reads with a reported alignment
	SeedProbes    int64 // index lookups
	BasesCompared int64 // verification comparisons (work units)

	// MakespanSec and ThreadImbalance summarise the OpenMP section
	// (wall time of the busiest worker and busiest/least-busy ratio);
	// real-time measurements, so run-dependent.
	MakespanSec     float64
	ThreadImbalance float64
}

// Accumulate folds one partition's stats into an aggregate. The
// work-unit counters (reads, alignments, probes, base comparisons) are
// exact sums either way; the real-time summaries depend on how the
// partitions executed: concurrent partitions overlap in time, so the
// aggregate makespan is the slowest partition's (max), while serial
// partitions run back to back, so makespans add. Thread imbalance
// reports the worst partition in both modes.
func (s *Stats) Accumulate(part Stats, concurrent bool) {
	s.Reads += part.Reads
	s.Aligned += part.Aligned
	s.SeedProbes += part.SeedProbes
	s.BasesCompared += part.BasesCompared
	if concurrent {
		if part.MakespanSec > s.MakespanSec {
			s.MakespanSec = part.MakespanSec
		}
	} else {
		s.MakespanSec += part.MakespanSec
	}
	if part.ThreadImbalance > s.ThreadImbalance {
		s.ThreadImbalance = part.ThreadImbalance
	}
}

// Aligner runs reads against one index.
type Aligner struct {
	ix *Index
}

// NewAligner wraps an index.
func NewAligner(ix *Index) *Aligner { return &Aligner{ix: ix} }

// AlignRead aligns a single read, returning the best alignment found
// and whether one met the mismatch budget. The stats argument, if
// non-nil, is updated (not thread-safe; use one per worker).
func (a *Aligner) AlignRead(rec *seq.Record, st *Stats) (Alignment, bool) {
	if st != nil {
		st.Reads++
	}
	if len(rec.Seq) < a.ix.opt.MinAlignLen {
		return Alignment{}, false
	}
	best, ok := a.alignOneStrand(rec.Seq, false, st)
	rc := seq.ReverseComplement(rec.Seq)
	if alt, ok2 := a.alignOneStrand(rc, true, st); ok2 && (!ok || alt.Mismatches < best.Mismatches) {
		best, ok = alt, true
	}
	if !ok {
		return Alignment{}, false
	}
	best.ReadID = rec.ID
	best.ReadLen = len(rec.Seq)
	best.ContigID = a.ix.contigs[best.Contig].ID
	if st != nil {
		st.Aligned++
	}
	return best, true
}

type diagonal struct {
	contig int32
	offset int32 // contigPos - readPos
}

func (a *Aligner) alignOneStrand(read []byte, reverse bool, st *Stats) (Alignment, bool) {
	opt := a.ix.opt
	votes := make(map[diagonal]int)
	it := kmer.NewIterator(read, opt.SeedLen)
	nextAccept := 0
	for {
		m, pos, ok := it.Next()
		if !ok {
			break
		}
		if pos < nextAccept {
			continue
		}
		nextAccept = pos + opt.SeedStride
		if st != nil {
			st.SeedProbes++
		}
		for _, h := range a.ix.lookupSeed(m) {
			votes[diagonal{h.contig, h.pos - int32(pos)}]++
		}
	}
	// Deterministic candidate order: map iteration order must not leak
	// into tie-breaking.
	cands := make([]diagonal, 0, len(votes))
	for d := range votes {
		cands = append(cands, d)
	}
	// Order by global contig name so the winner among equal-mismatch
	// candidates is the same whether the index holds all contigs or a
	// PyFasta partition.
	sort.Slice(cands, func(i, j int) bool {
		idI := a.ix.contigs[cands[i].contig].ID
		idJ := a.ix.contigs[cands[j].contig].ID
		if idI != idJ {
			return idI < idJ
		}
		return cands[i].offset < cands[j].offset
	})
	bestMM := opt.MaxMismatch + 1
	var best Alignment
	found := false
	for _, d := range cands {
		contig := a.ix.contigs[d.contig].Seq
		start := int(d.offset)
		if start < 0 || start+len(read) > len(contig) {
			continue
		}
		mm := 0
		for i := 0; i < len(read) && mm < bestMM; i++ {
			if contig[start+i] != read[i] {
				mm++
			}
		}
		if st != nil {
			st.BasesCompared += int64(len(read))
		}
		if mm < bestMM {
			bestMM = mm
			best = Alignment{Contig: int(d.contig), Pos: start, Reverse: reverse, Mismatches: mm}
			found = true
		}
	}
	return best, found && bestMM <= opt.MaxMismatch
}

// AlignAll aligns every read using the configured thread count and
// returns the alignments (in read order, unaligned reads omitted) plus
// aggregate stats, including the OpenMP section's makespan and thread
// imbalance.
func (a *Aligner) AlignAll(reads []seq.Record) ([]Alignment, Stats) {
	threads := a.ix.opt.Threads
	perThread := make([]Stats, threads)
	results := make([]*Alignment, len(reads))
	prof := omp.ParallelForProfiled(len(reads), threads, omp.Schedule{Kind: omp.Dynamic, Chunk: 64},
		func(i, tid int) {
			if al, ok := a.AlignRead(&reads[i], &perThread[tid]); ok {
				alCopy := al
				results[i] = &alCopy
			}
		})
	var out []Alignment
	agg := Stats{MakespanSec: prof.Makespan().Seconds(), ThreadImbalance: prof.Imbalance()}
	for _, r := range results {
		if r != nil {
			out = append(out, *r)
		}
	}
	for _, st := range perThread {
		agg.Reads += st.Reads
		agg.Aligned += st.Aligned
		agg.SeedProbes += st.SeedProbes
		agg.BasesCompared += st.BasesCompared
	}
	return out, agg
}

// mergeMu serialises nothing today but documents that SAM merging is a
// single writer step, matching the paper's post-run file merge.
var mergeMu sync.Mutex

// MergeSAM concatenates per-node alignment sets, renumbering nothing:
// contig ids are global names, so a simple append reproduces the
// paper's "files from all nodes are merged into a single file".
func MergeSAM(parts [][]Alignment) []Alignment {
	mergeMu.Lock()
	defer mergeMu.Unlock()
	var out []Alignment
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// BestPerRead reduces a merged alignment set to one alignment per read
// (Bowtie's default single-report mode) under the same ordering the
// aligner uses internally — fewest mismatches, then forward strand,
// then contig name, then position — so that a monolithic index and a
// set of partitioned indexes elect the same winner.
func BestPerRead(als []Alignment) []Alignment {
	better := func(a, b Alignment) bool {
		if a.Mismatches != b.Mismatches {
			return a.Mismatches < b.Mismatches
		}
		if a.Reverse != b.Reverse {
			return !a.Reverse
		}
		if a.ContigID != b.ContigID {
			return a.ContigID < b.ContigID
		}
		return a.Pos < b.Pos
	}
	best := map[string]Alignment{}
	var order []string
	for _, a := range als {
		cur, ok := best[a.ReadID]
		if !ok {
			best[a.ReadID] = a
			order = append(order, a.ReadID)
			continue
		}
		if better(a, cur) {
			best[a.ReadID] = a
		}
	}
	out := make([]Alignment, 0, len(order))
	for _, id := range order {
		out = append(out, best[id])
	}
	return out
}
