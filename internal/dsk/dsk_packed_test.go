package dsk

import (
	"math/rand"
	"reflect"
	"testing"

	"gotrinity/internal/jellyfish"
	"gotrinity/internal/seq"
)

// noisyReads builds an adversarial corpus: random ACGT reads with N
// poisoning at the start, middle and end, plus degenerate records
// (empty, shorter than k, exactly k, all-N).
func noisyReads(seed int64, n, length int) []seq.Record {
	rng := rand.New(rand.NewSource(seed))
	reads := make([]seq.Record, 0, n+4)
	for i := 0; i < n; i++ {
		s := make([]byte, length)
		for j := range s {
			s[j] = "ACGT"[rng.Intn(4)]
		}
		switch i % 5 {
		case 1:
			s[0] = 'N'
		case 2:
			s[len(s)/2] = 'N'
		case 3:
			s[len(s)-1] = 'N'
		case 4:
			s[rng.Intn(len(s))] = 'N'
			s[rng.Intn(len(s))] = 'N'
		}
		reads = append(reads, seq.Record{Seq: s})
	}
	allN := make([]byte, length)
	for j := range allN {
		allN[j] = 'N'
	}
	reads = append(reads,
		seq.Record{Seq: nil},                           // empty
		seq.Record{Seq: []byte("ACGTACG")},             // shorter than k
		seq.Record{Seq: []byte("ACGTACGTACGTACGTACG")}, // around k
		seq.Record{Seq: allN},                          // no valid k-mer
	)
	return reads
}

// TestCountPackedMatchesCount pins the packed streaming pass to the
// ASCII one over the adversarial corpus, both strandings.
func TestCountPackedMatchesCount(t *testing.T) {
	reads := noisyReads(11, 60, 90)
	preads := seq.PackRecords(reads)
	for _, canonical := range []bool{false, true} {
		opt := Options{K: 21, Partitions: 4, TmpDir: t.TempDir(), Canonical: canonical}
		want, wantSt, err := Count(reads, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, gotSt, err := CountPacked(preads, opt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("canonical=%v: packed entries differ (%d vs %d)", canonical, len(got), len(want))
		}
		if gotSt != wantSt {
			t.Fatalf("canonical=%v: stats differ: packed %+v ascii %+v", canonical, gotSt, wantSt)
		}
	}
}

// TestCountAmbiguousCorpus is the library-promotion differential: over
// the N-poisoned corpus, dsk must agree with in-memory Jellyfish
// entry-for-entry — the ambiguity handling (skipped k-mers spanning an
// N) has to match exactly.
func TestCountAmbiguousCorpus(t *testing.T) {
	reads := noisyReads(12, 80, 70)
	for _, canonical := range []bool{false, true} {
		jf, err := jellyfish.Count(reads, jellyfish.Options{K: 15, Canonical: canonical})
		if err != nil {
			t.Fatal(err)
		}
		want := jf.Entries(1)
		got, st, err := Count(reads, Options{K: 15, Partitions: 5, TmpDir: t.TempDir(), Canonical: canonical})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("canonical=%v: dsk entries differ from jellyfish (%d vs %d)", canonical, len(got), len(want))
		}
		if st.DistinctKmers != len(want) {
			t.Errorf("canonical=%v: distinct %d, want %d", canonical, st.DistinctKmers, len(want))
		}
	}
}

// TestCountChunkBoundary pushes each partition file across the 64KiB
// writer-buffer boundary, so k-mer frames straddle flushed chunks; the
// counts must still match Jellyfish exactly.
func TestCountChunkBoundary(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	reads := make([]seq.Record, 300)
	for i := range reads {
		s := make([]byte, 100)
		for j := range s {
			s[j] = "ACGT"[rng.Intn(4)]
		}
		reads[i] = seq.Record{Seq: s}
	}
	jf, err := jellyfish.Count(reads, jellyfish.Options{K: 25})
	if err != nil {
		t.Fatal(err)
	}
	want := jf.Entries(1)
	got, st, err := Count(reads, Options{K: 25, Partitions: 2, TmpDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// The point of the test: the streamed volume exceeds both
	// partitions' 64KiB buffers, so pass 2 reads across flush chunks.
	if st.PartitionBytes <= 2*(1<<16) {
		t.Fatalf("corpus too small to cross the writer buffer: %d bytes", st.PartitionBytes)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("chunk-boundary entries differ from jellyfish (%d vs %d)", len(got), len(want))
	}
}

// TestFromEntriesRoundTrip pins the dsk → CountTable bridge: a table
// rebuilt from dsk entries must dump the same entries Jellyfish's
// in-memory table does.
func TestFromEntriesRoundTrip(t *testing.T) {
	reads := noisyReads(14, 40, 80)
	const k = 17
	jf, err := jellyfish.Count(reads, jellyfish.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	entries, _, err := Count(reads, Options{K: k, Partitions: 3, TmpDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	rebuilt := jellyfish.FromEntries(k, entries)
	if !reflect.DeepEqual(rebuilt.Entries(1), jf.Entries(1)) {
		t.Fatal("rebuilt table entries differ from in-memory count")
	}
	if rebuilt.K != k {
		t.Errorf("rebuilt k = %d", rebuilt.K)
	}
}
