// Package dsk implements disk-partitioned k-mer counting in the style
// of DSK (Rizk, Lavenier, Chikhi — ref. [20] of the paper), which §II-A
// mentions as a lower-memory alternative to Jellyfish that "is not
// part of the Trinity pipeline yet". K-mers are hashed into disk
// partitions on a first streaming pass; each partition is then counted
// independently, so peak memory is bounded by the largest partition
// instead of the full distinct-k-mer set. The output is identical to
// Jellyfish's.
package dsk

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"gotrinity/internal/jellyfish"
	"gotrinity/internal/kmer"
	"gotrinity/internal/seq"
)

// Options configures a counting run.
type Options struct {
	K          int    // k-mer length (1..31)
	Partitions int    // disk partitions (default 8)
	TmpDir     string // partition file directory (default os.TempDir())
	Canonical  bool   // merge strands, as jellyfish.Options.Canonical
}

func (o *Options) normalize() error {
	if o.K <= 0 || o.K > kmer.MaxK {
		return fmt.Errorf("dsk: k=%d out of range 1..%d", o.K, kmer.MaxK)
	}
	if o.Partitions <= 0 {
		o.Partitions = 8
	}
	if o.TmpDir == "" {
		o.TmpDir = os.TempDir()
	}
	return nil
}

// Stats reports the memory/disk trade-off of a run.
type Stats struct {
	TotalKmers     int64 // k-mer occurrences streamed to disk
	DistinctKmers  int   // distinct k-mers across all partitions
	PeakPartition  int   // largest partition's distinct k-mers (peak memory)
	PartitionBytes int64 // total bytes written to partition files
	Partitions     int
}

// mix spreads k-mer bits across partitions (splitmix64 finaliser).
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Count streams the reads' k-mers into partition files and counts each
// partition independently, returning entries sorted by k-mer value
// (the same order jellyfish.CountTable.Entries uses).
func Count(reads []seq.Record, opt Options) ([]jellyfish.Entry, Stats, error) {
	return countWith(opt, len(reads), func(i int) kmerIter {
		return kmer.NewIterator(reads[i].Seq, opt.K)
	})
}

// CountPacked is Count over 2-bit packed reads: the same two-pass
// disk-partitioned counting, fed by the packed rolling iterator so no
// ASCII decode happens on the streaming pass. The packed iterator
// emits the exact k-mer stream of the ASCII one, so the entries and
// stats are identical to Count over the decoded records.
func CountPacked(reads []seq.PackedRecord, opt Options) ([]jellyfish.Entry, Stats, error) {
	return countWith(opt, len(reads), func(i int) kmerIter {
		it := kmer.NewPackedIterator(reads[i].Seq, opt.K)
		return &it
	})
}

// kmerIter is the common surface of the ASCII and packed rolling
// iterators.
type kmerIter interface {
	Next() (kmer.Kmer, int, bool)
}

// countWith runs both passes over the reads' k-mer streams. opt must
// be normalized by the caller's Options value semantics; it is
// normalized here once for both entry points.
func countWith(opt Options, n int, iterOf func(i int) kmerIter) ([]jellyfish.Entry, Stats, error) {
	var st Stats
	if err := opt.normalize(); err != nil {
		return nil, st, err
	}
	st.Partitions = opt.Partitions

	dir, err := os.MkdirTemp(opt.TmpDir, "dsk-")
	if err != nil {
		return nil, st, err
	}
	defer os.RemoveAll(dir)

	// Pass 1: stream k-mers to partition files.
	files := make([]*os.File, opt.Partitions)
	writers := make([]*bufio.Writer, opt.Partitions)
	for p := range files {
		f, err := os.Create(filepath.Join(dir, fmt.Sprintf("part%d.bin", p)))
		if err != nil {
			return nil, st, err
		}
		files[p] = f
		writers[p] = bufio.NewWriterSize(f, 1<<16)
	}
	var buf [8]byte
	for i := 0; i < n; i++ {
		it := iterOf(i)
		for {
			m, _, ok := it.Next()
			if !ok {
				break
			}
			if opt.Canonical {
				m, _ = m.Canonical(opt.K)
			}
			p := int(mix(uint64(m)) % uint64(opt.Partitions))
			binary.LittleEndian.PutUint64(buf[:], uint64(m))
			if _, err := writers[p].Write(buf[:]); err != nil {
				closeAll(files)
				return nil, st, err
			}
			st.TotalKmers++
			st.PartitionBytes += 8
		}
	}
	for p := range writers {
		if err := writers[p].Flush(); err != nil {
			closeAll(files)
			return nil, st, err
		}
	}

	// Pass 2: count each partition independently.
	var entries []jellyfish.Entry
	for p := range files {
		if _, err := files[p].Seek(0, io.SeekStart); err != nil {
			closeAll(files)
			return nil, st, err
		}
		counts := make(map[kmer.Kmer]uint32)
		br := bufio.NewReaderSize(files[p], 1<<16)
		for {
			if _, err := io.ReadFull(br, buf[:]); err != nil {
				if err == io.EOF {
					break
				}
				closeAll(files)
				return nil, st, fmt.Errorf("dsk: partition %d: %w", p, err)
			}
			counts[kmer.Kmer(binary.LittleEndian.Uint64(buf[:]))]++
		}
		if len(counts) > st.PeakPartition {
			st.PeakPartition = len(counts)
		}
		st.DistinctKmers += len(counts)
		for m, c := range counts {
			entries = append(entries, jellyfish.Entry{Kmer: m, Count: c})
		}
		files[p].Close()
		files[p] = nil
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Kmer < entries[j].Kmer })
	return entries, st, nil
}

func closeAll(files []*os.File) {
	for _, f := range files {
		if f != nil {
			f.Close()
		}
	}
}
