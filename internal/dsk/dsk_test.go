package dsk

import (
	"math/rand"
	"os"
	"testing"

	"gotrinity/internal/jellyfish"
	"gotrinity/internal/rnaseq"
	"gotrinity/internal/seq"
)

func TestCountMatchesJellyfish(t *testing.T) {
	d := rnaseq.Generate(rnaseq.Tiny(5))
	const k = 21
	for _, canonical := range []bool{false, true} {
		jf, err := jellyfish.Count(d.Reads, jellyfish.Options{K: k, Canonical: canonical})
		if err != nil {
			t.Fatal(err)
		}
		want := jf.Entries(1)
		got, st, err := Count(d.Reads, Options{K: k, Partitions: 4, TmpDir: t.TempDir(), Canonical: canonical})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("canonical=%v: %d entries vs jellyfish %d", canonical, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("canonical=%v: entry %d differs: %v vs %v", canonical, i, got[i], want[i])
			}
		}
		if st.DistinctKmers != len(want) {
			t.Errorf("stats distinct = %d, want %d", st.DistinctKmers, len(want))
		}
	}
}

func TestPeakMemoryBelowTotal(t *testing.T) {
	d := rnaseq.Generate(rnaseq.Tiny(6))
	_, st, err := Count(d.Reads, Options{K: 21, Partitions: 8, TmpDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if st.DistinctKmers == 0 {
		t.Fatal("nothing counted")
	}
	// The point of DSK: peak partition ≪ distinct total. With 8 even
	// partitions expect ~1/8; allow generous slack.
	if st.PeakPartition >= st.DistinctKmers/2 {
		t.Errorf("peak partition %d not below half of %d distinct", st.PeakPartition, st.DistinctKmers)
	}
	if st.PartitionBytes != 8*st.TotalKmers {
		t.Errorf("partition bytes %d != 8*%d", st.PartitionBytes, st.TotalKmers)
	}
}

func TestSinglePartitionEqualsInMemory(t *testing.T) {
	reads := []seq.Record{{Seq: []byte("ACGTACGTACGT")}}
	got, st, err := Count(reads, Options{K: 5, Partitions: 1, TmpDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if st.PeakPartition != st.DistinctKmers {
		t.Errorf("single partition peak %d != distinct %d", st.PeakPartition, st.DistinctKmers)
	}
	if len(got) != st.DistinctKmers {
		t.Errorf("entries %d != distinct %d", len(got), st.DistinctKmers)
	}
}

func TestOptionsValidation(t *testing.T) {
	if _, _, err := Count(nil, Options{K: 0}); err == nil {
		t.Error("accepted k=0")
	}
	if _, _, err := Count(nil, Options{K: 32}); err == nil {
		t.Error("accepted k=32")
	}
}

func TestEmptyReads(t *testing.T) {
	got, st, err := Count(nil, Options{K: 5, TmpDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 || st.TotalKmers != 0 {
		t.Errorf("empty input produced %d entries", len(got))
	}
}

func TestTempFilesCleanedUp(t *testing.T) {
	dir := t.TempDir()
	reads := []seq.Record{{Seq: []byte("ACGTACGTACGTACGTACGT")}}
	if _, _, err := Count(reads, Options{K: 7, Partitions: 3, TmpDir: dir}); err != nil {
		t.Fatal(err)
	}
	entries, err := osReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("temp dir not cleaned: %v", entries)
	}
}

func osReadDir(dir string) ([]string, error) {
	f, err := os.Open(dir)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return f.Readdirnames(-1)
}

func BenchmarkDSKCount(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	reads := make([]seq.Record, 500)
	for i := range reads {
		s := make([]byte, 100)
		for j := range s {
			s[j] = "ACGT"[rng.Intn(4)]
		}
		reads[i] = seq.Record{Seq: s}
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Count(reads, Options{K: 25, Partitions: 8, TmpDir: dir}); err != nil {
			b.Fatal(err)
		}
	}
}
