package collectl

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"time"
)

// Sampler records a (time, heap) series while work runs, the way the
// real Collectl tool samples RAM during a Trinity run to draw the
// Fig. 2 / Fig. 11 curves.
type Sampler struct {
	interval time.Duration

	mu      sync.Mutex
	samples []Sample
	marks   []Mark
	stop    chan struct{}
	done    chan struct{}
	start   time.Time
}

// Sample is one measurement point.
type Sample struct {
	At      float64 // seconds since Start
	HeapGB  float64
	Routine int // live goroutines, a proxy for active threads
}

// Mark labels a moment in the series (stage transitions).
type Mark struct {
	At    float64
	Label string
}

// NewSampler creates a sampler with the given interval (default 50 ms).
func NewSampler(interval time.Duration) *Sampler {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	return &Sampler{interval: interval}
}

// Start begins sampling in the background.
func (s *Sampler) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop != nil {
		return // already running
	}
	s.start = time.Now()
	s.stop = make(chan struct{})
	s.done = make(chan struct{})
	go s.loop(s.stop, s.done)
}

func (s *Sampler) loop(stop, done chan struct{}) {
	ticker := time.NewTicker(s.interval)
	defer ticker.Stop()
	defer close(done)
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			s.record()
		}
	}
}

func (s *Sampler) record() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s.mu.Lock()
	s.samples = append(s.samples, Sample{
		At:      time.Since(s.start).Seconds(),
		HeapGB:  float64(ms.HeapAlloc) / 1e9,
		Routine: runtime.NumGoroutine(),
	})
	s.mu.Unlock()
}

// MarkStage labels the current instant, e.g. at a stage boundary.
func (s *Sampler) MarkStage(label string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.stop == nil {
		return
	}
	s.marks = append(s.marks, Mark{At: time.Since(s.start).Seconds(), Label: label})
}

// Stop ends sampling and returns the collected series. One final
// sample is taken so short stages are never empty. Stop is idempotent:
// further calls return the already-collected series instead of
// discarding it.
func (s *Sampler) Stop() ([]Sample, []Mark) {
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop, s.done = nil, nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
		s.record()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...), append([]Mark(nil), s.marks...)
}

// RenderSeries draws the heap series as a text sparkline with stage
// marks, the textual analog of the paper's Collectl plots.
func RenderSeries(w io.Writer, samples []Sample, marks []Mark) error {
	if len(samples) == 0 {
		_, err := fmt.Fprintln(w, "(no samples)")
		return err
	}
	peak := 0.0
	for _, s := range samples {
		if s.HeapGB > peak {
			peak = s.HeapGB
		}
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	line := make([]rune, len(samples))
	for i, s := range samples {
		idx := 0
		if peak > 0 {
			idx = int(s.HeapGB / peak * float64(len(levels)-1))
		}
		line[i] = levels[idx]
	}
	if _, err := fmt.Fprintf(w, "heap (peak %.3f GB over %.2fs):\n%s\n",
		peak, samples[len(samples)-1].At, string(line)); err != nil {
		return err
	}
	for _, m := range marks {
		if _, err := fmt.Fprintf(w, "  @%7.3fs %s\n", m.At, m.Label); err != nil {
			return err
		}
	}
	return nil
}
