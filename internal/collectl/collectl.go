// Package collectl stands in for the Collectl monitoring tool the
// paper uses to record RAM usage and runtime of every Trinity stage
// (Figs. 2 and 11). It offers two layers: a Meter that measures real
// wall time and heap growth around a stage executed at laptop scale,
// and a Trace that assembles per-stage (start, duration, RSS) series —
// either measured or projected to paper scale — and renders them as
// the timeline tables the figures plot.
package collectl

import (
	"fmt"
	"io"
	"runtime"
	"time"
)

// StageProfile is one stage's row in a trace.
type StageProfile struct {
	Name     string
	Start    float64 // seconds since trace start
	Duration float64 // seconds
	RSSGB    float64 // resident memory attributed to the stage
}

// End returns the stage's finish time.
func (s StageProfile) End() float64 { return s.Start + s.Duration }

// Trace is an ordered sequence of stage profiles.
type Trace struct {
	Stages []StageProfile
}

// Append adds a stage immediately after the previous one.
func (t *Trace) Append(name string, duration, rssGB float64) {
	start := 0.0
	if n := len(t.Stages); n > 0 {
		start = t.Stages[n-1].End()
	}
	t.Stages = append(t.Stages, StageProfile{Name: name, Start: start, Duration: duration, RSSGB: rssGB})
}

// AppendAt adds a stage with an explicit start time. The streaming
// pipeline's stages overlap in wall time, so their profiles cannot be
// chained end-to-start the way Append assumes; each records the window
// it actually occupied.
func (t *Trace) AppendAt(name string, start, duration, rssGB float64) {
	t.Stages = append(t.Stages, StageProfile{Name: name, Start: start, Duration: duration, RSSGB: rssGB})
}

// Total returns the latest stage end time. For sequential traces this
// is the final stage's end; for overlapping (AppendAt) traces it is
// the wall-clock span of the whole recording.
func (t *Trace) Total() float64 {
	total := 0.0
	for _, s := range t.Stages {
		if s.End() > total {
			total = s.End()
		}
	}
	return total
}

// PeakRSS returns the maximum stage RSS.
func (t *Trace) PeakRSS() float64 {
	peak := 0.0
	for _, s := range t.Stages {
		if s.RSSGB > peak {
			peak = s.RSSGB
		}
	}
	return peak
}

// Render writes the trace as a table plus an ASCII timeline, the
// textual equivalent of the paper's Collectl plots.
func (t *Trace) Render(w io.Writer) error {
	total := t.Total()
	if _, err := fmt.Fprintf(w, "%-22s %12s %12s %10s\n", "stage", "start (h)", "dur (h)", "RSS (GB)"); err != nil {
		return err
	}
	for _, s := range t.Stages {
		if _, err := fmt.Fprintf(w, "%-22s %12.2f %12.2f %10.1f\n",
			s.Name, s.Start/3600, s.Duration/3600, s.RSSGB); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "total: %.2f h, peak RSS: %.1f GB\n", total/3600, t.PeakRSS()); err != nil {
		return err
	}
	// Timeline: one bar per stage, width proportional to duration.
	const width = 60
	for _, s := range t.Stages {
		n := 0
		if total > 0 {
			n = int(s.Duration / total * width)
		}
		if n < 1 {
			n = 1
		}
		bar := make([]byte, n)
		for i := range bar {
			bar[i] = '#'
		}
		if _, err := fmt.Fprintf(w, "%-22s %s\n", s.Name, bar); err != nil {
			return err
		}
	}
	return nil
}

// Meter measures real stages at laptop scale.
type Meter struct {
	start   time.Time
	trace   Trace
	baseRSS uint64
}

// NewMeter starts a measurement session.
func NewMeter() *Meter {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return &Meter{start: time.Now(), baseRSS: ms.HeapAlloc}
}

// Run executes fn as a named stage, recording its wall time and the
// heap in use when it finishes (in GB).
func (m *Meter) Run(name string, fn func() error) error {
	t0 := time.Now()
	err := fn()
	dur := time.Since(t0).Seconds()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.trace.Append(name, dur, float64(ms.HeapAlloc)/1e9)
	return err
}

// RecordAt appends a stage that ran over an explicit wall-clock window
// (relative to the meter's start), sampling the heap like Run does.
// Used by the streaming pipeline, whose overlapping stages are timed by
// the DAG itself rather than executed under the meter.
func (m *Meter) RecordAt(name string, start time.Time, dur time.Duration) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	m.trace.AppendAt(name, start.Sub(m.start).Seconds(), dur.Seconds(), float64(ms.HeapAlloc)/1e9)
}

// Trace returns the accumulated stage trace.
func (m *Meter) Trace() *Trace { return &m.trace }
