package collectl

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestTraceAppendChainsStarts(t *testing.T) {
	var tr Trace
	tr.Append("jellyfish", 100, 10)
	tr.Append("inchworm", 50, 40)
	tr.Append("chrysalis", 200, 20)
	if tr.Stages[1].Start != 100 || tr.Stages[2].Start != 150 {
		t.Errorf("starts = %g, %g", tr.Stages[1].Start, tr.Stages[2].Start)
	}
	if tr.Total() != 350 {
		t.Errorf("total = %g", tr.Total())
	}
	if tr.PeakRSS() != 40 {
		t.Errorf("peak = %g", tr.PeakRSS())
	}
}

func TestTraceEmpty(t *testing.T) {
	var tr Trace
	if tr.Total() != 0 || tr.PeakRSS() != 0 {
		t.Error("empty trace not zero")
	}
	var buf bytes.Buffer
	if err := tr.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRender(t *testing.T) {
	var tr Trace
	tr.Append("bowtie", 3600, 5)
	tr.Append("graphfromfasta", 7200, 12)
	var buf bytes.Buffer
	if err := tr.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bowtie", "graphfromfasta", "total: 3.00 h", "peak RSS: 12.0 GB", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMeterRecordsStages(t *testing.T) {
	m := NewMeter()
	if err := m.Run("work", func() error {
		buf := make([]byte, 1<<20)
		_ = buf
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr.Stages) != 1 || tr.Stages[0].Name != "work" {
		t.Fatalf("stages = %+v", tr.Stages)
	}
	if tr.Stages[0].Duration < 0 {
		t.Error("negative duration")
	}
}

func TestMeterPropagatesError(t *testing.T) {
	m := NewMeter()
	want := errors.New("boom")
	if err := m.Run("fail", func() error { return want }); !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
	if len(m.Trace().Stages) != 1 {
		t.Error("failed stage not recorded")
	}
}
