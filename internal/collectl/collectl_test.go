package collectl

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestTraceAppendChainsStarts(t *testing.T) {
	var tr Trace
	tr.Append("jellyfish", 100, 10)
	tr.Append("inchworm", 50, 40)
	tr.Append("chrysalis", 200, 20)
	if tr.Stages[1].Start != 100 || tr.Stages[2].Start != 150 {
		t.Errorf("starts = %g, %g", tr.Stages[1].Start, tr.Stages[2].Start)
	}
	if tr.Total() != 350 {
		t.Errorf("total = %g", tr.Total())
	}
	if tr.PeakRSS() != 40 {
		t.Errorf("peak = %g", tr.PeakRSS())
	}
}

func TestTraceEmpty(t *testing.T) {
	var tr Trace
	if tr.Total() != 0 || tr.PeakRSS() != 0 {
		t.Error("empty trace not zero")
	}
	var buf bytes.Buffer
	if err := tr.Render(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestTraceRender(t *testing.T) {
	var tr Trace
	tr.Append("bowtie", 3600, 5)
	tr.Append("graphfromfasta", 7200, 12)
	var buf bytes.Buffer
	if err := tr.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"bowtie", "graphfromfasta", "total: 3.00 h", "peak RSS: 12.0 GB", "#"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestMeterRecordsStages(t *testing.T) {
	m := NewMeter()
	if err := m.Run("work", func() error {
		buf := make([]byte, 1<<20)
		_ = buf
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	tr := m.Trace()
	if len(tr.Stages) != 1 || tr.Stages[0].Name != "work" {
		t.Fatalf("stages = %+v", tr.Stages)
	}
	if tr.Stages[0].Duration < 0 {
		t.Error("negative duration")
	}
}

func TestMeterPropagatesError(t *testing.T) {
	m := NewMeter()
	want := errors.New("boom")
	if err := m.Run("fail", func() error { return want }); !errors.Is(err, want) {
		t.Errorf("err = %v", err)
	}
	if len(m.Trace().Stages) != 1 {
		t.Error("failed stage not recorded")
	}
}

// Overlapping stages (the streaming pipeline's AppendAt windows) keep
// Total at the wall-clock span, not the sum of durations.
func TestTraceAppendAtOverlaps(t *testing.T) {
	var tr Trace
	tr.AppendAt("bowtie", 0, 100, 5)
	tr.AppendAt("graphfromfasta", 40, 100, 8) // overlaps bowtie
	tr.AppendAt("butterfly", 90, 20, 6)       // nested inside graphfromfasta
	if tr.Stages[1].Start != 40 {
		t.Errorf("AppendAt start = %g, want 40", tr.Stages[1].Start)
	}
	if tr.Total() != 140 {
		t.Errorf("total = %g, want 140 (max end, not 220 summed)", tr.Total())
	}
	// Mixing in a chained Append continues from the last stage row.
	tr.Append("report", 10, 1)
	if tr.Stages[3].Start != 110 || tr.Total() != 140 {
		t.Errorf("append after AppendAt: start=%g total=%g", tr.Stages[3].Start, tr.Total())
	}
}

func TestMeterRecordAt(t *testing.T) {
	m := NewMeter()
	start := time.Now()
	time.Sleep(5 * time.Millisecond)
	m.RecordAt("stream", start, 3*time.Millisecond)
	tr := m.Trace()
	if len(tr.Stages) != 1 {
		t.Fatalf("stages = %d, want 1", len(tr.Stages))
	}
	s := tr.Stages[0]
	if s.Name != "stream" || s.Start < 0 || s.Duration <= 0 {
		t.Errorf("recorded stage %+v", s)
	}
	if s.RSSGB <= 0 {
		t.Errorf("RecordAt did not sample the heap: rss=%g", s.RSSGB)
	}
}
