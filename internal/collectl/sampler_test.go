package collectl

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSamplerCollectsSeries(t *testing.T) {
	s := NewSampler(time.Millisecond)
	s.Start()
	s.MarkStage("phase-one")
	// Allocate something observable and let a few ticks pass.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 50; i++ {
		sink = append(sink, make([]byte, 1<<16))
		time.Sleep(time.Millisecond / 2)
	}
	_ = sink
	s.MarkStage("phase-two")
	samples, marks := s.Stop()
	if len(samples) == 0 {
		t.Fatal("no samples collected")
	}
	if len(marks) != 2 || marks[0].Label != "phase-one" {
		t.Fatalf("marks = %+v", marks)
	}
	for i := 1; i < len(samples); i++ {
		if samples[i].At < samples[i-1].At {
			t.Fatal("sample times not monotonic")
		}
	}
	if samples[len(samples)-1].HeapGB <= 0 {
		t.Error("heap never measured")
	}
}

func TestSamplerStopIdempotent(t *testing.T) {
	s := NewSampler(time.Millisecond)
	s.Start()
	s.MarkStage("phase")
	time.Sleep(3 * time.Millisecond)
	a, am := s.Stop()
	b, bm := s.Stop()
	if len(a) == 0 {
		t.Error("first stop returned nothing")
	}
	// Stop must be idempotent: a second call returns the collected
	// series again instead of discarding it.
	if len(b) != len(a) || len(bm) != len(am) {
		t.Errorf("second stop lost data: %d/%d samples, %d/%d marks", len(b), len(a), len(bm), len(am))
	}
	for i := range a {
		if b[i] != a[i] {
			t.Fatalf("sample %d differs after second stop: %+v vs %+v", i, b[i], a[i])
		}
	}
}

func TestSamplerStopBeforeStart(t *testing.T) {
	s := NewSampler(time.Millisecond)
	if samples, marks := s.Stop(); len(samples) != 0 || len(marks) != 0 {
		t.Errorf("stop before start returned data: %v %v", samples, marks)
	}
}

func TestSamplerMarkBeforeStartIgnored(t *testing.T) {
	s := NewSampler(time.Millisecond)
	s.MarkStage("too-early")
	s.Start()
	time.Sleep(2 * time.Millisecond)
	_, marks := s.Stop()
	if len(marks) != 0 {
		t.Errorf("marks = %+v", marks)
	}
}

func TestSamplerDoubleStart(t *testing.T) {
	s := NewSampler(time.Millisecond)
	s.Start()
	s.Start() // must not spawn a second loop or panic
	time.Sleep(2 * time.Millisecond)
	if samples, _ := s.Stop(); len(samples) == 0 {
		t.Error("no samples after double start")
	}
}

func TestRenderSeries(t *testing.T) {
	samples := []Sample{{At: 0, HeapGB: 0.1}, {At: 1, HeapGB: 0.5}, {At: 2, HeapGB: 0.2}}
	marks := []Mark{{At: 0.5, Label: "jellyfish"}}
	var buf bytes.Buffer
	if err := RenderSeries(&buf, samples, marks); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "jellyfish") || !strings.Contains(out, "peak 0.500 GB") {
		t.Errorf("render:\n%s", out)
	}
}

func TestRenderSeriesEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := RenderSeries(&buf, nil, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no samples") {
		t.Error("empty render wrong")
	}
}
