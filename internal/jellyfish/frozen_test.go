package jellyfish

import (
	"math/rand"
	"testing"

	"gotrinity/internal/kmer"
	"gotrinity/internal/seq"
)

// TestFreezeDifferential pins the frozen flat table against the live
// sharded table it snapshots: every counted k-mer and a spray of
// absent ones must Get identical counts, stranded and canonical, on
// randomized reads that include ambiguous bases and empty sequences.
func TestFreezeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		k := 3 + rng.Intn(12)
		var reads []seq.Record
		for r := 0; r < 30; r++ {
			n := rng.Intn(120) // includes empty and shorter-than-k reads
			s := make([]byte, n)
			for i := range s {
				s[i] = "ACGTN"[rng.Intn(5)] // ~20% ambiguous bases
			}
			reads = append(reads, seq.Record{ID: "r", Seq: s})
		}
		table, err := Count(reads, Options{K: k, Canonical: trial%2 == 0})
		if err != nil {
			t.Fatal(err)
		}
		f := table.Freeze()
		if f.K != k {
			t.Fatalf("trial %d: frozen K = %d, want %d", trial, f.K, k)
		}
		if f.Distinct() != table.Distinct() {
			t.Fatalf("trial %d: Distinct %d vs %d", trial, f.Distinct(), table.Distinct())
		}
		if f.Total() != table.Total() {
			t.Fatalf("trial %d: Total %d vs %d", trial, f.Total(), table.Total())
		}
		for _, e := range table.Entries(1) {
			if got := f.Get(e.Kmer); got != e.Count {
				t.Fatalf("trial %d: Get(%v) = %d, want %d", trial, e.Kmer, got, e.Count)
			}
		}
		for i := 0; i < 500; i++ {
			m := kmer.Kmer(rng.Uint64() & ((1 << uint(2*k)) - 1))
			if got, want := f.Get(m), table.Get(m); got != want {
				t.Fatalf("trial %d: Get(%v) = %d, want %d", trial, m, got, want)
			}
		}
	}
}

func TestFreezeEmptyTable(t *testing.T) {
	f := NewCountTable(21, 4).Freeze()
	if f.Distinct() != 0 || f.Total() != 0 {
		t.Fatalf("empty freeze: distinct=%d total=%d", f.Distinct(), f.Total())
	}
	if got := f.Get(12345); got != 0 {
		t.Fatalf("empty freeze Get = %d", got)
	}
}

// BenchmarkCountTableGet compares the loop-1 probe cost of the sharded
// mutex-guarded table against its frozen flat snapshot, with all cores
// probing concurrently — the access pattern of weldSupport under the
// hybrid rank goroutines. The working set is sized cache-resident so
// the benchmark isolates per-probe structural overhead (lock + map
// traversal vs one hash + one interleaved-slot load) rather than DRAM
// latency, mirroring weldSupport's hot-window locality: consecutive
// weld candidates re-probe overlapping window k-mers. This is the ≥5x
// acceptance benchmark of the zero-allocation kernel PR;
// `make bench-kernels` snapshots it into BENCH_kernels.json.
func BenchmarkCountTableGet(b *testing.B) {
	const k = 21
	rng := rand.New(rand.NewSource(3))
	table := NewCountTable(k, 64)
	probes := make([]kmer.Kmer, 1<<12)
	for i := range probes {
		m := kmer.Kmer(rng.Uint64() & ((1 << (2 * k)) - 1))
		probes[i] = m
		if i%2 == 0 { // half the probes hit, half miss
			table.Add(m, uint32(1+rng.Intn(100)))
		}
	}
	frozen := table.Freeze()
	b.Run("sharded", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			var sink uint32
			i := 0
			for pb.Next() {
				sink += table.Get(probes[i&(len(probes)-1)])
				i++
			}
			_ = sink
		})
	})
	b.Run("frozen", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			var sink uint32
			i := 0
			for pb.Next() {
				sink += frozen.Get(probes[i&(len(probes)-1)])
				i++
			}
			_ = sink
		})
	})
}
