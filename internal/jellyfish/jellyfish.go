// Package jellyfish is the k-mer counting stage of the pipeline,
// mirroring the role of Jellyfish in Trinity: it counts canonical (or
// stranded) k-mers across millions of reads using a sharded concurrent
// hash table, and dumps the counts in the text format consumed by
// Inchworm ("count kmer" per line, like `jellyfish dump -c`).
package jellyfish

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"gotrinity/internal/kmer"
	"gotrinity/internal/seq"
)

// Options configures a counting run.
type Options struct {
	K         int  // k-mer length (1..31)
	Canonical bool // count k-mer and reverse complement together
	MinCount  int  // drop k-mers rarer than this at dump time (error filter)
	Threads   int  // worker goroutines; 0 means GOMAXPROCS
	Shards    int  // hash shards; 0 means 4×threads rounded up to pow2
}

func (o *Options) normalize() error {
	if o.K <= 0 || o.K > kmer.MaxK {
		return fmt.Errorf("jellyfish: k=%d out of range 1..%d", o.K, kmer.MaxK)
	}
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.MinCount <= 0 {
		o.MinCount = 1
	}
	if o.Shards <= 0 {
		o.Shards = nextPow2(4 * o.Threads)
	} else {
		o.Shards = nextPow2(o.Shards)
	}
	return nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// CountTable holds k-mer counts sharded by hash so that independent
// goroutines rarely contend on the same lock.
type CountTable struct {
	K      int
	shards []shard
	mask   uint64
}

type shard struct {
	mu sync.Mutex
	m  map[kmer.Kmer]uint32
}

// NewCountTable allocates an empty table with the given k and shard
// count (rounded to a power of two).
func NewCountTable(k, shards int) *CountTable {
	shards = nextPow2(shards)
	t := &CountTable{K: k, shards: make([]shard, shards), mask: uint64(shards - 1)}
	for i := range t.shards {
		t.shards[i].m = make(map[kmer.Kmer]uint32)
	}
	return t
}

// mix is a 64-bit finaliser (splitmix64) spreading k-mer bits across
// shards.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add increments the count of m by delta.
func (t *CountTable) Add(m kmer.Kmer, delta uint32) {
	s := &t.shards[mix(uint64(m))&t.mask]
	s.mu.Lock()
	s.m[m] += delta
	s.mu.Unlock()
}

// Get returns the count of m.
func (t *CountTable) Get(m kmer.Kmer) uint32 {
	s := &t.shards[mix(uint64(m))&t.mask]
	s.mu.Lock()
	c := s.m[m]
	s.mu.Unlock()
	return c
}

// Distinct returns the number of distinct k-mers stored.
func (t *CountTable) Distinct() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += len(t.shards[i].m)
		t.shards[i].mu.Unlock()
	}
	return n
}

// Total returns the total number of k-mer occurrences counted.
func (t *CountTable) Total() uint64 {
	var n uint64
	for i := range t.shards {
		t.shards[i].mu.Lock()
		for _, c := range t.shards[i].m {
			n += uint64(c)
		}
		t.shards[i].mu.Unlock()
	}
	return n
}

// Frozen is an immutable, flat, open-addressing snapshot of a
// CountTable. Get is a lock-free linear probe — no shard mutex, no map
// header chasing — which is what the Chrysalis welding loops need:
// weldSupport issues one or two Get probes per window position across
// every candidate weld, so the sharded table's per-probe Lock/Unlock
// dominated loop 1's wall clock. Freeze once after counting completes,
// then share the Frozen table across any number of reader goroutines.
type Frozen struct {
	K       int
	entries []frozenEntry
	mask    uint64
	shift   uint // 64 - log2(len(entries)): Fibonacci hash takes top bits
	n       int
}

// frozenEntry interleaves the probe key with its count so a Get costs
// exactly one cache line per probe step. key is (kmer<<1)|1 — the low
// tag bit distinguishes the all-A k-mer (which packs to 0) from an
// empty slot; k ≤ 31 leaves room for the shift.
type frozenEntry struct {
	key   uint64
	count uint32
}

// Freeze snapshots the table into a Frozen flat table. The snapshot is
// taken shard by shard under each shard's lock; concurrent Adds that
// race the freeze land in either the snapshot or only the live table,
// so callers should freeze only after counting has completed.
func (t *CountTable) Freeze() *Frozen {
	distinct := t.Distinct()
	slots := 16
	shift := uint(60)
	for slots < 3*distinct/2+1 {
		slots <<= 1
		shift--
	}
	f := &Frozen{
		K:       t.K,
		entries: make([]frozenEntry, slots),
		mask:    uint64(slots - 1),
		shift:   shift,
		n:       distinct,
	}
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for m, c := range s.m {
			j := (uint64(m) * fibMul) >> f.shift
			for f.entries[j].key != 0 {
				j = (j + 1) & f.mask
			}
			f.entries[j] = frozenEntry{uint64(m)<<1 | 1, c}
		}
		s.mu.Unlock()
	}
	return f
}

// FrozenFromEntries builds a Frozen table directly from (k-mer, count)
// pairs — the constructor the sharded k-mer layer uses for owner-rank
// shards and remote-answer caches, which materialise partial tables
// without ever holding a full CountTable. Entries must name distinct
// k-mers; probe behaviour (and therefore Get results) is identical to
// a Freeze of a table holding the same pairs.
func FrozenFromEntries(k int, entries []Entry) *Frozen {
	slots := 16
	shift := uint(60)
	for slots < 3*len(entries)/2+1 {
		slots <<= 1
		shift--
	}
	f := &Frozen{
		K:       k,
		entries: make([]frozenEntry, slots),
		mask:    uint64(slots - 1),
		shift:   shift,
		n:       len(entries),
	}
	for _, e := range entries {
		j := (uint64(e.Kmer) * fibMul) >> f.shift
		for f.entries[j].key != 0 {
			j = (j + 1) & f.mask
		}
		f.entries[j] = frozenEntry{uint64(e.Kmer)<<1 | 1, e.Count}
	}
	return f
}

// ForEach calls fn for every (k-mer, count) pair in slot order —
// deterministic for a deterministically built snapshot. The sharding
// layer uses it to carve a full source table into owner shards.
func (f *Frozen) ForEach(fn func(m kmer.Kmer, count uint32)) {
	for _, e := range f.entries {
		if e.key != 0 {
			fn(kmer.Kmer(e.key>>1), e.count)
		}
	}
}

// MemBytes returns the resident size of the snapshot's backing array —
// the per-rank memory term the sharding layer meters.
func (f *Frozen) MemBytes() int64 {
	return int64(len(f.entries)) * 16 // frozenEntry: 8-byte key + padded 4-byte count
}

// fibMul is 2^64/phi — Fibonacci hashing. One multiply spreads the
// k-mer's low-entropy bits into the top bits that index the table.
const fibMul = 0x9e3779b97f4a7c15

// Get returns the count of m. Wait-free; safe for concurrent readers.
func (f *Frozen) Get(m kmer.Kmer) uint32 {
	key := uint64(m)<<1 | 1
	i := (uint64(m) * fibMul) >> f.shift
	for {
		e := f.entries[i]
		if e.key == key {
			return e.count
		}
		if e.key == 0 {
			return 0
		}
		i = (i + 1) & f.mask
	}
}

// Distinct returns the number of distinct k-mers in the snapshot.
func (f *Frozen) Distinct() int { return f.n }

// Total returns the total number of occurrences in the snapshot.
func (f *Frozen) Total() uint64 {
	var n uint64
	for _, e := range f.entries {
		if e.key != 0 {
			n += uint64(e.count)
		}
	}
	return n
}

// Entry is one (k-mer, count) pair in a dump.
type Entry struct {
	Kmer  kmer.Kmer
	Count uint32
}

// Entries snapshots the table as a slice filtered by minCount, sorted
// by k-mer value for deterministic output.
func (t *CountTable) Entries(minCount int) []Entry {
	var out []Entry
	for i := range t.shards {
		t.shards[i].mu.Lock()
		for m, c := range t.shards[i].m {
			if int(c) >= minCount {
				out = append(out, Entry{m, c})
			}
		}
		t.shards[i].mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kmer < out[j].Kmer })
	return out
}

// FromEntries rebuilds a count table from dumped entries — the bridge
// from external counters (dsk's disk-partitioned pass, LoadFile) into
// the stages that consume a CountTable. The rebuilt table is
// indistinguishable from one filled by Count over the same k-mers.
func FromEntries(k int, entries []Entry) *CountTable {
	t := NewCountTable(k, nextPow2(4*runtime.GOMAXPROCS(0)))
	for _, e := range entries {
		t.Add(e.Kmer, e.Count)
	}
	return t
}

// Count tallies the k-mers of every record into a fresh table.
func Count(recs []seq.Record, opt Options) (*CountTable, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	table := NewCountTable(opt.K, opt.Shards)
	var wg sync.WaitGroup
	work := make(chan int, opt.Threads)
	for w := 0; w < opt.Threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				countRecord(table, recs[idx].Seq, opt)
			}
		}()
	}
	for i := range recs {
		work <- i
	}
	close(work)
	wg.Wait()
	return table, nil
}

func countRecord(table *CountTable, s []byte, opt Options) {
	it := kmer.NewIterator(s, opt.K)
	for {
		m, _, ok := it.Next()
		if !ok {
			return
		}
		if opt.Canonical {
			m, _ = m.Canonical(opt.K)
		}
		table.Add(m, 1)
	}
}

// Dump writes the table as "count<TAB>kmer" lines (decreasing count,
// then increasing k-mer), the text format Inchworm parses.
func Dump(w io.Writer, t *CountTable, minCount int) error {
	entries := t.Entries(minCount)
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Count != entries[j].Count {
			return entries[i].Count > entries[j].Count
		}
		return entries[i].Kmer < entries[j].Kmer
	})
	bw := bufio.NewWriterSize(w, 1<<16)
	for _, e := range entries {
		if _, err := fmt.Fprintf(bw, "%d\t%s\n", e.Count, e.Kmer.Decode(t.K)); err != nil { // ascii-ok: dump-file boundary
			return err
		}
	}
	return bw.Flush()
}

// DumpFile writes the dump to path.
func DumpFile(path string, t *CountTable, minCount int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Dump(f, t, minCount); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load parses a dump produced by Dump back into entries. k must match
// the dump's k-mer length.
func Load(r io.Reader, k int) ([]Entry, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	var out []Entry
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			return nil, fmt.Errorf("jellyfish: dump line %d: want 2 fields, got %d", lineno, len(fields))
		}
		c, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("jellyfish: dump line %d: bad count %q", lineno, fields[0])
		}
		if len(fields[1]) != k {
			return nil, fmt.Errorf("jellyfish: dump line %d: k-mer length %d, want %d", lineno, len(fields[1]), k)
		}
		m, ok := kmer.Encode([]byte(fields[1]), k)
		if !ok {
			return nil, fmt.Errorf("jellyfish: dump line %d: invalid k-mer %q", lineno, fields[1])
		}
		out = append(out, Entry{m, uint32(c)})
	}
	return out, sc.Err()
}

// LoadFile reads a dump file.
func LoadFile(path string, k int) ([]Entry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f, k)
}
