package jellyfish

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"gotrinity/internal/kmer"
	"gotrinity/internal/seq"
)

func recsOf(ss ...string) []seq.Record {
	recs := make([]seq.Record, len(ss))
	for i, s := range ss {
		recs[i] = seq.Record{ID: "r", Seq: []byte(s)}
	}
	return recs
}

func TestCountSimple(t *testing.T) {
	table, err := Count(recsOf("ACGT", "ACGT"), Options{K: 3, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	acg, _ := kmer.Encode([]byte("ACG"), 3)
	cgt, _ := kmer.Encode([]byte("CGT"), 3)
	if table.Get(acg) != 2 || table.Get(cgt) != 2 {
		t.Errorf("counts: ACG=%d CGT=%d, want 2/2", table.Get(acg), table.Get(cgt))
	}
	if table.Distinct() != 2 {
		t.Errorf("distinct = %d, want 2", table.Distinct())
	}
	if table.Total() != 4 {
		t.Errorf("total = %d, want 4", table.Total())
	}
}

func TestCountCanonicalMergesStrands(t *testing.T) {
	// CGT's reverse complement is ACG: canonical counting merges them.
	table, err := Count(recsOf("ACG", "CGT"), Options{K: 3, Canonical: true})
	if err != nil {
		t.Fatal(err)
	}
	if table.Distinct() != 1 {
		t.Fatalf("canonical distinct = %d, want 1", table.Distinct())
	}
	acg, _ := kmer.Encode([]byte("ACG"), 3)
	can, _ := acg.Canonical(3)
	if table.Get(can) != 2 {
		t.Errorf("canonical count = %d, want 2", table.Get(can))
	}
}

func TestCountRejectsBadK(t *testing.T) {
	if _, err := Count(nil, Options{K: 0}); err == nil {
		t.Error("accepted k=0")
	}
	if _, err := Count(nil, Options{K: 32}); err == nil {
		t.Error("accepted k=32")
	}
}

// Concurrent counting must agree with a serial reference tally.
func TestCountMatchesSerialReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const k = 7
	recs := make([]seq.Record, 300)
	ref := map[kmer.Kmer]uint32{}
	for i := range recs {
		n := 20 + rng.Intn(80)
		s := make([]byte, n)
		for j := range s {
			s[j] = "ACGTN"[rng.Intn(5)] // include ambiguity
		}
		recs[i] = seq.Record{Seq: s}
		it := kmer.NewIterator(s, k)
		for {
			m, _, ok := it.Next()
			if !ok {
				break
			}
			ref[m]++
		}
	}
	table, err := Count(recs, Options{K: k, Threads: 8, Shards: 16})
	if err != nil {
		t.Fatal(err)
	}
	if table.Distinct() != len(ref) {
		t.Fatalf("distinct %d vs ref %d", table.Distinct(), len(ref))
	}
	for m, c := range ref {
		if got := table.Get(m); got != c {
			t.Fatalf("count(%s) = %d, want %d", m.Decode(k), got, c)
		}
	}
}

func TestEntriesFilterAndOrder(t *testing.T) {
	table, _ := Count(recsOf("AAAA", "AAAT", "AAAT"), Options{K: 4})
	all := table.Entries(1)
	if len(all) != 2 {
		t.Fatalf("entries = %d, want 2", len(all))
	}
	if !(all[0].Kmer < all[1].Kmer) {
		t.Error("entries not sorted by k-mer")
	}
	freq := table.Entries(2)
	if len(freq) != 1 || freq[0].Kmer.Decode(4) != "AAAT" {
		t.Errorf("minCount filter wrong: %+v", freq)
	}
}

func TestDumpLoadRoundTrip(t *testing.T) {
	table, _ := Count(recsOf("ACGTACGT", "TTTTTTT"), Options{K: 5})
	var buf bytes.Buffer
	if err := Dump(&buf, table, 1); err != nil {
		t.Fatal(err)
	}
	entries, err := Load(&buf, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != table.Distinct() {
		t.Fatalf("loaded %d entries, want %d", len(entries), table.Distinct())
	}
	// Dump orders by decreasing count.
	for i := 1; i < len(entries); i++ {
		if entries[i].Count > entries[i-1].Count {
			t.Fatal("dump not sorted by decreasing count")
		}
	}
	for _, e := range entries {
		if table.Get(e.Kmer) != e.Count {
			t.Fatalf("entry %v mismatch", e)
		}
	}
}

func TestLoadRejectsMalformed(t *testing.T) {
	cases := []string{
		"5\n",        // missing k-mer
		"x\tACGTA\n", // bad count
		"3\tACG\n",   // wrong k
		"3\tACGNB\n", // invalid base
	}
	for _, in := range cases {
		if _, err := Load(strings.NewReader(in), 5); err == nil {
			t.Errorf("Load accepted %q", in)
		}
	}
}

func TestLoadSkipsBlankLines(t *testing.T) {
	entries, err := Load(strings.NewReader("2\tACGTA\n\n1\tTTTTT\n"), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Errorf("entries = %d, want 2", len(entries))
	}
}

func BenchmarkCount(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	recs := make([]seq.Record, 1000)
	for i := range recs {
		s := make([]byte, 100)
		for j := range s {
			s[j] = "ACGT"[rng.Intn(4)]
		}
		recs[i] = seq.Record{Seq: s}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Count(recs, Options{K: 25}); err != nil {
			b.Fatal(err)
		}
	}
}
