package jellyfish

import (
	"strings"
	"testing"
)

func FuzzLoad(f *testing.F) {
	f.Add("3\tACGTA\n1\tTTTTT\n", 5)
	f.Add("x\tACGTA\n", 5)
	f.Add("", 5)
	f.Add("1\tACGN\n", 4)
	f.Fuzz(func(t *testing.T, data string, k int) {
		if k < 1 || k > 31 {
			return
		}
		entries, err := Load(strings.NewReader(data), k)
		if err != nil {
			return
		}
		for _, e := range entries {
			if len(e.Kmer.Decode(k)) != k {
				t.Fatal("entry with wrong k decoded")
			}
		}
	})
}
