// Packed-input counting. CountPacked is Count over 2-bit packed reads:
// the same sharded table, worker pool, and per-record rolling
// extraction, but fed by kmer.NewPackedIterator so no ASCII decode
// happens on the hot path. Because the packed iterator emits the exact
// k-mer stream of the ASCII iterator, the resulting table is identical
// to Count over the decoded records.

package jellyfish

import (
	"sync"

	"gotrinity/internal/kmer"
	"gotrinity/internal/seq"
)

// CountPacked counts k-mer occurrences across packed reads.
func CountPacked(recs []seq.PackedRecord, opt Options) (*CountTable, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	table := NewCountTable(opt.K, opt.Shards)
	var wg sync.WaitGroup
	work := make(chan int, opt.Threads)
	for w := 0; w < opt.Threads; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				countPackedRecord(table, recs[idx].Seq, opt)
			}
		}()
	}
	for i := range recs {
		work <- i
	}
	close(work)
	wg.Wait()
	return table, nil
}

func countPackedRecord(table *CountTable, p seq.Packed, opt Options) {
	it := kmer.NewPackedIterator(p, opt.K)
	for {
		m, _, ok := it.Next()
		if !ok {
			return
		}
		if opt.Canonical {
			m, _ = m.Canonical(opt.K)
		}
		table.Add(m, 1)
	}
}
