package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestMeanVarianceMedian(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("mean = %g", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("variance = %g", v)
	}
	if md := Median(xs); math.Abs(md-4.5) > 1e-12 {
		t.Errorf("median = %g", md)
	}
	if md := Median([]float64{3, 1, 2}); md != 2 {
		t.Errorf("odd median = %g", md)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Median(nil) != 0 {
		t.Error("empty inputs must be 0")
	}
	if Variance([]float64{5}) != 0 {
		t.Error("singleton variance must be 0")
	}
}

func TestWelchTTestIdenticalSamples(t *testing.T) {
	a := []float64{1, 2, 3, 4, 5}
	r, err := WelchTTest(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.T) > 1e-12 || r.P < 0.999 {
		t.Errorf("identical samples: t=%g p=%g", r.T, r.P)
	}
}

func TestWelchTTestClearlyDifferent(t *testing.T) {
	a := []float64{1, 1.1, 0.9, 1.05, 0.95}
	b := []float64{10, 10.2, 9.8, 10.1, 9.9}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 1e-6 {
		t.Errorf("p = %g for clearly different samples", r.P)
	}
}

func TestWelchTTestOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	r, err := WelchTTest(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.001 {
		t.Errorf("same-distribution samples rejected: p=%g", r.P)
	}
	if r.P > 1 || r.P < 0 {
		t.Errorf("p out of range: %g", r.P)
	}
}

// Known value: t-distribution with df=10, t=2.228 is the 97.5th
// percentile, so two-sided p must be ~0.05.
func TestStudentTKnownQuantile(t *testing.T) {
	p := 2 * studentTCDFUpper(2.228, 10)
	if math.Abs(p-0.05) > 0.002 {
		t.Errorf("p(2.228, df=10) = %g, want ~0.05", p)
	}
	p = 2 * studentTCDFUpper(1.96, 1e6) // ~normal
	if math.Abs(p-0.05) > 0.002 {
		t.Errorf("p(1.96, df=1e6) = %g, want ~0.05", p)
	}
}

func TestWelchTTestErrors(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("accepted singleton sample")
	}
}

func TestWelchTTestConstantSamples(t *testing.T) {
	same, err := WelchTTest([]float64{3, 3, 3}, []float64{3, 3})
	if err != nil || same.P != 1 {
		t.Errorf("constant equal: p=%g err=%v", same.P, err)
	}
	diff, err := WelchTTest([]float64{3, 3, 3}, []float64{4, 4})
	if err != nil || diff.P != 0 {
		t.Errorf("constant different: p=%g err=%v", diff.P, err)
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if regIncBeta(2, 3, 0) != 0 || regIncBeta(2, 3, 1) != 1 {
		t.Error("boundary values wrong")
	}
	// I_x(1,1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		if got := regIncBeta(1, 1, x); math.Abs(got-x) > 1e-9 {
			t.Errorf("I_%g(1,1) = %g", x, got)
		}
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	if got := regIncBeta(2.5, 4, 0.3) + regIncBeta(4, 2.5, 0.7); math.Abs(got-1) > 1e-9 {
		t.Errorf("symmetry violated: %g", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if len(h.Counts) != 5 {
		t.Fatalf("buckets = %d", len(h.Counts))
	}
	total := 0
	for _, c := range h.Counts {
		total += c
		if c != 2 {
			t.Errorf("uneven bucket: %v", h.Counts)
		}
	}
	if total != 10 {
		t.Errorf("total = %d", total)
	}
	empty := NewHistogram(nil, 3)
	for _, c := range empty.Counts {
		if c != 0 {
			t.Error("empty histogram non-zero")
		}
	}
	constant := NewHistogram([]float64{5, 5, 5}, 2)
	if constant.Counts[0]+constant.Counts[1] != 3 {
		t.Error("constant data lost")
	}
}

// TestHistogramDegenerate covers the inputs the metrics exporter can
// feed: all-equal samples, NaN/Inf pollution, and n <= 0. Bucket edges
// must always come back finite and strictly increasing.
func TestHistogramDegenerate(t *testing.T) {
	assertEdges := func(h Histogram, label string) {
		t.Helper()
		edges := h.Edges()
		if len(h.Counts) > 0 && len(edges) != len(h.Counts)+1 {
			t.Fatalf("%s: %d edges for %d buckets", label, len(edges), len(h.Counts))
		}
		for i := 1; i < len(edges); i++ {
			if math.IsNaN(edges[i]) || math.IsInf(edges[i], 0) || edges[i] <= edges[i-1] {
				t.Fatalf("%s: bad edges %v", label, edges)
			}
		}
	}

	constant := NewHistogram([]float64{2.5, 2.5, 2.5, 2.5}, 4)
	if constant.N() != 4 || constant.Counts[0] != 4 {
		t.Errorf("all-equal samples: counts %v", constant.Counts)
	}
	if constant.Max <= constant.Min {
		t.Errorf("all-equal samples: zero-width range [%g, %g]", constant.Min, constant.Max)
	}
	assertEdges(constant, "all-equal")

	polluted := NewHistogram([]float64{math.NaN(), 1, math.Inf(1), 2, math.Inf(-1), 3}, 3)
	if polluted.N() != 3 {
		t.Errorf("NaN/Inf samples binned: counts %v", polluted.Counts)
	}
	if polluted.Min != 1 || polluted.Max != 3 {
		t.Errorf("range polluted by non-finite samples: [%g, %g]", polluted.Min, polluted.Max)
	}
	assertEdges(polluted, "polluted")

	onlyBad := NewHistogram([]float64{math.NaN(), math.Inf(1)}, 2)
	if onlyBad.N() != 0 {
		t.Errorf("non-finite-only samples binned: counts %v", onlyBad.Counts)
	}

	if h := NewHistogram([]float64{1, 2}, 0); len(h.Counts) != 0 || h.Edges() != nil {
		t.Errorf("n=0 histogram not empty: %+v", h)
	}
	if h := NewHistogram([]float64{1, 2}, -3); len(h.Counts) != 0 {
		t.Errorf("negative bucket count not empty: %+v", h)
	}
}
