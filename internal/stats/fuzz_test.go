package stats

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzHistogram shakes NewHistogram with arbitrary float64 samples
// (including NaN, ±Inf, subnormals and extreme magnitudes decoded
// straight from the fuzz bytes) and arbitrary bucket counts. The
// invariants are the ones the metrics exporter relies on: every finite
// sample is binned exactly once, non-finite samples are skipped, and
// the bucket edges are finite and strictly increasing.
func FuzzHistogram(f *testing.F) {
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0}, 4)
	f.Add([]byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 1, 0x3f, 0xf0, 0, 0, 0, 0, 0, 0}, 2) // NaN + 1.0
	f.Add([]byte{0x7f, 0xf0, 0, 0, 0, 0, 0, 0}, 3)                               // +Inf
	f.Add([]byte{0x40, 0x09, 0x21, 0xfb, 0x54, 0x44, 0x2d, 0x18,
		0x40, 0x09, 0x21, 0xfb, 0x54, 0x44, 0x2d, 0x18}, 5) // pi twice (all-equal)

	f.Fuzz(func(t *testing.T, raw []byte, n int) {
		if n > 1<<16 {
			n = 1 << 16 // keep allocations sane; larger n adds nothing
		}
		var xs []float64
		for len(raw) >= 8 {
			xs = append(xs, math.Float64frombits(binary.BigEndian.Uint64(raw)))
			raw = raw[8:]
		}
		h := NewHistogram(xs, n)

		finite := 0
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				finite++
			}
		}
		if n <= 0 || finite == 0 {
			if h.N() != 0 {
				t.Fatalf("degenerate input binned %d samples (n=%d, finite=%d)", h.N(), n, finite)
			}
			return
		}
		if len(h.Counts) != n {
			t.Fatalf("bucket count %d, want %d", len(h.Counts), n)
		}
		if h.N() != finite {
			t.Fatalf("binned %d samples, want %d finite of %d", h.N(), finite, len(xs))
		}
		for _, c := range h.Counts {
			if c < 0 {
				t.Fatalf("negative bucket count: %v", h.Counts)
			}
		}
		edges := h.Edges()
		if len(edges) != n+1 {
			t.Fatalf("%d edges for %d buckets", len(edges), n)
		}
		for i, e := range edges {
			if math.IsNaN(e) {
				t.Fatalf("NaN edge %d: %v", i, edges)
			}
			// Extreme ranges (Min near -MaxFloat64, Max near +MaxFloat64)
			// legitimately overflow intermediate widths to +Inf; what must
			// hold is monotonicity wherever the edges are finite.
			if i > 0 && !math.IsInf(edges[i], 0) && !math.IsInf(edges[i-1], 0) && edges[i] <= edges[i-1] {
				t.Fatalf("edges not increasing at %d: %v (min=%g max=%g)", i, edges, h.Min, h.Max)
			}
		}
	})
}
