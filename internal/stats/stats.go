// Package stats provides the small statistical toolkit the validation
// experiments need: summary statistics, histograms, and Welch's
// two-sample t-test (the paper reports "no significant difference ...
// according to a two sample t-test", §IV).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance (0 for n < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Median returns the middle value (mean of the two middles for even n).
func Median(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// TTestResult reports a Welch's t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch-Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchTTest compares the means of two independent samples without
// assuming equal variances. It returns an error for samples smaller
// than two.
func WelchTTest(a, b []float64) (TTestResult, error) {
	if len(a) < 2 || len(b) < 2 {
		return TTestResult{}, fmt.Errorf("stats: t-test needs >=2 samples per group (got %d, %d)", len(a), len(b))
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a), Variance(b)
	na, nb := float64(len(a)), float64(len(b))
	sa, sb := va/na, vb/nb
	se := math.Sqrt(sa + sb)
	if se == 0 {
		// Identical constant samples: means equal ⇒ p = 1, else p = 0.
		if ma == mb {
			return TTestResult{T: 0, DF: na + nb - 2, P: 1}, nil
		}
		return TTestResult{T: math.Inf(1), DF: na + nb - 2, P: 0}, nil
	}
	t := (ma - mb) / se
	df := (sa + sb) * (sa + sb) / (sa*sa/(na-1) + sb*sb/(nb-1))
	p := 2 * studentTCDFUpper(math.Abs(t), df)
	if p > 1 {
		p = 1
	}
	return TTestResult{T: t, DF: df, P: p}, nil
}

// studentTCDFUpper returns P(T > t) for Student's t with df degrees of
// freedom, via the regularised incomplete beta function.
func studentTCDFUpper(t, df float64) float64 {
	if math.IsInf(t, 1) {
		return 0
	}
	x := df / (df + t*t)
	return 0.5 * regIncBeta(df/2, 0.5, x)
}

// regIncBeta computes the regularised incomplete beta function
// I_x(a, b) using the continued-fraction expansion (Numerical Recipes
// style), accurate to ~1e-10 for the df ranges the tests use.
func regIncBeta(a, b, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x >= 1 {
		return 1
	}
	lbeta := lgamma(a+b) - lgamma(a) - lgamma(b)
	front := math.Exp(math.Log(x)*a+math.Log(1-x)*b+lbeta) / a
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x)
	}
	return 1 - math.Exp(math.Log(1-x)*b+math.Log(x)*a+lbeta)/b*betaCF(b, a, 1-x)
}

func betaCF(a, b, x float64) float64 {
	const maxIter = 300
	const eps = 1e-12
	const tiny = 1e-30
	qab, qap, qam := a+b, a+1, a-1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

func lgamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// Histogram bins values into equal-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
}

// NewHistogram bins xs into n buckets spanning the data range.
// Degenerate inputs are made safe for downstream consumers (the
// metrics exporter renders bucket boundaries as Prometheus `le`
// labels, which must be finite and strictly increasing):
//
//   - NaN and ±Inf samples are skipped — they carry no binnable value;
//   - all-equal samples (zero-width range) get a unit-wide range
//     [v, v+1] so every bucket edge stays distinct;
//   - n <= 0 or no finite samples yield an empty histogram.
func NewHistogram(xs []float64, n int) Histogram {
	if n <= 0 {
		return Histogram{}
	}
	h := Histogram{Counts: make([]int, n)}
	finite := false
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		if !finite {
			h.Min, h.Max = x, x
			finite = true
			continue
		}
		if x < h.Min {
			h.Min = x
		}
		if x > h.Max {
			h.Max = x
		}
	}
	if !finite {
		return h
	}
	if h.Max == h.Min {
		// Widen the zero-width range by max(1, ~1e-9 relative) so the
		// padding survives float64 rounding at any magnitude; near
		// +MaxFloat64 the upward pad would overflow, so widen downward.
		pad := 1.0
		if rel := math.Abs(h.Min) * 1e-9; rel > pad {
			pad = rel
		}
		widen(&h, pad)
	}
	// A nonzero range can still be too narrow for n distinct edges
	// (samples a few ulps apart): guarantee each bucket spans at least
	// 4 ulps at the data's magnitude, so Min + width*i stays strictly
	// increasing despite rounding.
	scale := math.Max(math.Abs(h.Min), math.Abs(h.Max))
	if minWidth := 4 * (math.Nextafter(scale, math.Inf(1)) - scale); h.Max-h.Min < minWidth*float64(n) {
		widen(&h, minWidth*float64(n))
	}
	width := (h.Max - h.Min) / float64(n)
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		b := int((x - h.Min) / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		h.Counts[b]++
	}
	return h
}

// widen grows [h.Min, h.Max] to span at least pad, preferring to raise
// Max; near +MaxFloat64, where that would overflow, it lowers Min.
func widen(h *Histogram, pad float64) {
	if up := h.Min + pad; up > h.Min && !math.IsInf(up, 0) {
		h.Max = up
	} else {
		h.Min = h.Max - pad
	}
}

// N returns the total number of binned samples.
func (h Histogram) N() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Edges returns the len(Counts)+1 bucket boundaries, finite and
// strictly increasing; bucket i covers [Edges[i], Edges[i+1]). An
// empty histogram returns nil.
func (h Histogram) Edges() []float64 {
	n := len(h.Counts)
	if n == 0 {
		return nil
	}
	edges := make([]float64, n+1)
	width := (h.Max - h.Min) / float64(n)
	// The outer edges are pinned exactly: no accumulation error at Max,
	// and no Inf*0 = NaN at Min when the range overflows float64.
	edges[0] = h.Min
	edges[n] = h.Max
	for i := 1; i < n; i++ {
		edges[i] = h.Min + width*float64(i)
	}
	return edges
}
