package inchworm

import (
	"math/rand"
	"strings"
	"testing"

	"gotrinity/internal/jellyfish"
	"gotrinity/internal/kmer"
	"gotrinity/internal/rnaseq"
	"gotrinity/internal/seq"
)

func dictFromReads(t *testing.T, reads []seq.Record, k int) []jellyfish.Entry {
	t.Helper()
	table, err := jellyfish.Count(reads, jellyfish.Options{K: k})
	if err != nil {
		t.Fatal(err)
	}
	return table.Entries(1)
}

// A single unique sequence covered by overlapping reads must assemble
// back into (at least) that sequence.
func TestReassemblesSingleTranscript(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	transcript := make([]byte, 400)
	for i := range transcript {
		transcript[i] = "ACGT"[rng.Intn(4)]
	}
	var reads []seq.Record
	for start := 0; start+60 <= len(transcript); start += 5 {
		for c := 0; c < 3; c++ { // 3x coverage of every window
			reads = append(reads, seq.Record{Seq: transcript[start : start+60]})
		}
	}
	const k = 25
	contigs, stats, err := Run(dictFromReads(t, reads, k), Options{K: k, MinKmerCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) == 0 {
		t.Fatal("no contigs assembled")
	}
	if stats.Contigs != len(contigs) {
		t.Errorf("stats.Contigs = %d, want %d", stats.Contigs, len(contigs))
	}
	joined := ""
	for _, c := range contigs {
		joined += string(c.Seq) + "|"
	}
	// The longest contig should reconstruct essentially the whole transcript.
	longest := ""
	for _, c := range contigs {
		if len(c.Seq) > len(longest) {
			longest = string(c.Seq)
		}
	}
	if !strings.Contains(string(transcript), longest) {
		t.Errorf("longest contig is not a substring of the source transcript (len=%d)", len(longest))
	}
	if len(longest) < len(transcript)*9/10 {
		t.Errorf("longest contig %d bases, want >= 90%% of %d; contigs: %s", len(longest), len(transcript), joined[:min(200, len(joined))])
	}
}

func TestErrorKmersPruned(t *testing.T) {
	// One read with a sequencing error produces singleton k-mers that
	// MinKmerCount=2 must remove, leaving the error branch unassembled.
	rng := rand.New(rand.NewSource(5))
	transcript := make([]byte, 200)
	for i := range transcript {
		transcript[i] = "ACGT"[rng.Intn(4)]
	}
	var reads []seq.Record
	for start := 0; start+50 <= len(transcript); start += 4 {
		reads = append(reads, seq.Record{Seq: transcript[start : start+50]})
		reads = append(reads, seq.Record{Seq: transcript[start : start+50]})
	}
	bad := append([]byte(nil), transcript[40:90]...)
	bad[25] = seq.Complement(bad[25]) // guaranteed substitution
	reads = append(reads, seq.Record{Seq: bad})

	const k = 21
	a, err := New(dictFromReads(t, reads, k), Options{K: k, MinKmerCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	contigs := a.Assemble()
	for _, c := range contigs {
		if strings.Contains(string(c.Seq), string(bad[20:30])) &&
			!strings.Contains(string(transcript), string(c.Seq)) {
			t.Errorf("error branch leaked into contig %s", c.ID)
		}
	}
	st := a.Stats()
	if st.KmersKept >= st.KmersIn {
		t.Errorf("no k-mers pruned: in=%d kept=%d", st.KmersIn, st.KmersKept)
	}
}

// Fig. 1 of the paper: extension picks the *highest occurring* k-mer
// with a (k-1) overlap.
func TestExtensionPrefersMostAbundant(t *testing.T) {
	// Seed GGCA; right extensions GCAT (x5) and GCAA (x2) both overlap.
	// Build counts directly.
	entries := []jellyfish.Entry{}
	add := func(s string, c uint32) {
		m, ok := kmer.Encode([]byte(s), len(s))
		if !ok {
			t.Fatalf("bad kmer %s", s)
		}
		entries = append(entries, jellyfish.Entry{Kmer: m, Count: c})
	}
	add("GGCA", 9) // seed: most abundant
	add("GCAT", 5) // preferred right extension
	add("GCAA", 2) // rejected branch
	add("CATT", 4) // continues the preferred path
	contigs, _, err := Run(entries, Options{K: 4, MinKmerCount: 1, MinContigLen: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 1 {
		t.Fatalf("contigs = %d, want 1", len(contigs))
	}
	if got := string(contigs[0].Seq); got != "GGCATT" {
		t.Errorf("contig = %s, want GGCATT", got)
	}
}

func TestEachKmerUsedOnce(t *testing.T) {
	// Two disjoint transcripts: their contigs must not share k-mers.
	d := rnaseq.Generate(rnaseq.Tiny(31))
	const k = 21
	dict := dictFromReads(t, d.Reads, k)
	a, err := New(dict, Options{K: k, MinKmerCount: 2})
	if err != nil {
		t.Fatal(err)
	}
	contigs := a.Assemble()
	seen := map[string]string{}
	for _, c := range contigs {
		s := string(c.Seq)
		for i := 0; i+k <= len(s); i++ {
			w := s[i : i+k]
			if prev, dup := seen[w]; dup && prev != c.ID {
				t.Fatalf("k-mer %s appears in %s and %s", w, prev, c.ID)
			}
			seen[w] = c.ID
		}
	}
}

func TestMinContigLenFilter(t *testing.T) {
	var reads []seq.Record
	for i := 0; i < 3; i++ {
		reads = append(reads, seq.Record{Seq: []byte("ACGTACGTAC")})
	}
	dict := dictFromReads(t, reads, 5)
	contigs, _, err := Run(dict, Options{K: 5, MinKmerCount: 1, MinContigLen: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(contigs) != 0 {
		t.Errorf("short contigs not filtered: %d", len(contigs))
	}
}

func TestRejectsBadK(t *testing.T) {
	if _, _, err := Run(nil, Options{K: 0}); err == nil {
		t.Error("accepted k=0")
	}
}

func TestStatsExtensionOpsCounted(t *testing.T) {
	d := rnaseq.Generate(rnaseq.Tiny(1))
	dict := dictFromReads(t, d.Reads, 21)
	_, st, err := Run(dict, Options{K: 21})
	if err != nil {
		t.Fatal(err)
	}
	if st.ExtensionOps == 0 {
		t.Error("extension ops not metered")
	}
	if st.BasesOut == 0 {
		t.Error("no contig bases reported")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Threaded dictionary construction must produce the same assembly as
// serial construction.
func TestThreadedConstructionMatchesSerial(t *testing.T) {
	d := rnaseq.Generate(rnaseq.Tiny(77))
	dict := dictFromReads(t, d.Reads, 21)
	serial, _, err := Run(dict, Options{K: 21})
	if err != nil {
		t.Fatal(err)
	}
	threaded, _, err := Run(dict, Options{K: 21, Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(threaded) {
		t.Fatalf("serial %d vs threaded %d contigs", len(serial), len(threaded))
	}
	for i := range serial {
		if string(serial[i].Seq) != string(threaded[i].Seq) {
			t.Fatalf("contig %d differs", i)
		}
	}
}
