// Package inchworm implements the second Trinity stage: it reads the
// k-mer dictionary written by Jellyfish, sorts it by decreasing
// abundance, and greedily extends each unused seed k-mer in both
// directions via (k-1)-mer overlaps (Fig. 1 of the paper), reporting
// the resulting linear contigs.
package inchworm

import (
	"fmt"
	"sort"

	"gotrinity/internal/jellyfish"
	"gotrinity/internal/kmer"
	"gotrinity/internal/omp"
	"gotrinity/internal/seq"
)

// Options configures an Inchworm run.
type Options struct {
	K            int // k-mer length, must match the dictionary
	MinKmerCount int // error filter: drop k-mers rarer than this (default 2)
	MinContigLen int // shortest contig to report (default 2k-1, one join)
	Threads      int // dictionary construction threads (default 1; §II-A's OpenMP hash build)
}

func (o *Options) normalize() error {
	if o.K <= 0 || o.K > kmer.MaxK {
		return fmt.Errorf("inchworm: k=%d out of range", o.K)
	}
	if o.MinKmerCount <= 0 {
		o.MinKmerCount = 2
	}
	if o.MinContigLen <= 0 {
		o.MinContigLen = 2*o.K - 1
	}
	return nil
}

// Stats reports what an assembly did, for profiling and the pipeline
// figures.
type Stats struct {
	KmersIn      int   // dictionary entries offered
	KmersKept    int   // entries surviving the error filter
	Contigs      int   // contigs reported
	BasesOut     int   // total contig bases
	ExtensionOps int64 // greedy extension probes performed (work units)
}

// Assembler holds the k-mer dictionary (the "hash table object" that
// dominates Inchworm's memory footprint, per §II-A).
type Assembler struct {
	opt    Options
	counts map[kmer.Kmer]uint32
	used   map[kmer.Kmer]bool
	seeds  []jellyfish.Entry
	stats  Stats
}

// New builds an assembler from a Jellyfish dictionary. Entries below
// MinKmerCount are discarded ("removing likely error-containing
// k-mers"), and the rest are sorted in decreasing order of abundance.
func New(entries []jellyfish.Entry, opt Options) (*Assembler, error) {
	if err := opt.normalize(); err != nil {
		return nil, err
	}
	a := &Assembler{
		opt:    opt,
		counts: make(map[kmer.Kmer]uint32, len(entries)),
		used:   make(map[kmer.Kmer]bool, len(entries)),
	}
	a.stats.KmersIn = len(entries)
	if opt.Threads > 1 {
		// Threaded hash construction, as the original Inchworm builds
		// its "hash table object ... using multiple OpenMP threads":
		// per-thread filtered partitions merged afterwards.
		parts := make([][]jellyfish.Entry, opt.Threads)
		omp.ParallelFor(len(entries), opt.Threads, omp.Schedule{Kind: omp.Static},
			func(i, tid int) {
				if int(entries[i].Count) >= opt.MinKmerCount {
					parts[tid] = append(parts[tid], entries[i])
				}
			})
		for _, part := range parts {
			for _, e := range part {
				a.counts[e.Kmer] = e.Count
				a.seeds = append(a.seeds, e)
			}
		}
	} else {
		for _, e := range entries {
			if int(e.Count) >= opt.MinKmerCount {
				a.counts[e.Kmer] = e.Count
				a.seeds = append(a.seeds, e)
			}
		}
	}
	a.stats.KmersKept = len(a.seeds)
	sort.Slice(a.seeds, func(i, j int) bool {
		if a.seeds[i].Count != a.seeds[j].Count {
			return a.seeds[i].Count > a.seeds[j].Count
		}
		return a.seeds[i].Kmer < a.seeds[j].Kmer
	})
	return a, nil
}

// Assemble runs the greedy extension over every seed and returns the
// contigs as FASTA-ready records named "contigN".
func (a *Assembler) Assemble() []seq.Record {
	var contigs []seq.Record
	for _, s := range a.seeds {
		if a.used[s.Kmer] {
			continue
		}
		c := a.extend(s.Kmer)
		if len(c) >= a.opt.MinContigLen {
			contigs = append(contigs, seq.Record{
				ID:   fmt.Sprintf("contig%d", len(contigs)),
				Desc: fmt.Sprintf("len=%d", len(c)),
				Seq:  c,
			})
			a.stats.Contigs++
			a.stats.BasesOut += len(c)
		}
	}
	return contigs
}

// Stats returns assembly statistics; valid after Assemble.
func (a *Assembler) Stats() Stats { return a.stats }

// extend grows a contig from seed in both directions, marking every
// consumed k-mer as used so each k-mer seeds at most one contig.
func (a *Assembler) extend(seedKmer kmer.Kmer) []byte {
	k := a.opt.K
	a.used[seedKmer] = true

	// Extend rightwards: repeatedly find the most abundant unused
	// k-mer whose (k-1)-prefix equals the current (k-1)-suffix.
	var right []byte
	cur := seedKmer
	for {
		next, base, ok := a.bestExtension(cur, true)
		if !ok {
			break
		}
		right = append(right, base)
		a.used[next] = true
		cur = next
	}

	// Extend leftwards symmetrically.
	var left []byte // collected in reverse order
	cur = seedKmer
	for {
		next, base, ok := a.bestExtension(cur, false)
		if !ok {
			break
		}
		left = append(left, base)
		a.used[next] = true
		cur = next
	}

	contig := make([]byte, 0, len(left)+k+len(right))
	for i := len(left) - 1; i >= 0; i-- {
		contig = append(contig, left[i])
	}
	contig = append(contig, seedKmer.Decode(k)...) // ascii-ok: contig record assembly, once per contig
	contig = append(contig, right...)
	return contig
}

// bestExtension probes the four possible single-base extensions of cur
// (to the right if fwd, else to the left) and returns the unused
// candidate with the highest count.
func (a *Assembler) bestExtension(cur kmer.Kmer, fwd bool) (kmer.Kmer, byte, bool) {
	k := a.opt.K
	var bestK kmer.Kmer
	var bestBase byte
	var bestCount uint32
	found := false
	for code := uint64(0); code < 4; code++ {
		var cand kmer.Kmer
		if fwd {
			cand = cur.AppendBase(code, k)
		} else {
			cand = cur.PrependBase(code, k)
		}
		a.stats.ExtensionOps++
		c, ok := a.counts[cand]
		if !ok || a.used[cand] {
			continue
		}
		if !found || c > bestCount || (c == bestCount && cand < bestK) {
			bestK, bestBase, bestCount, found = cand, seq.IndexBase(code), c, true
		}
	}
	return bestK, bestBase, found
}

// Run is the full Inchworm stage: count dictionary in, contigs out.
func Run(entries []jellyfish.Entry, opt Options) ([]seq.Record, Stats, error) {
	a, err := New(entries, opt)
	if err != nil {
		return nil, Stats{}, err
	}
	contigs := a.Assemble()
	return contigs, a.Stats(), nil
}
