package pyfasta

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"gotrinity/internal/seq"
)

func randomRecords(rng *rand.Rand, n int) []seq.Record {
	recs := make([]seq.Record, n)
	for i := range recs {
		l := 10 + rng.Intn(500)
		if rng.Float64() < 0.05 {
			l *= 20 // occasional giant, as with real contigs
		}
		s := bytes.Repeat([]byte{'A'}, l)
		recs[i] = seq.Record{ID: idFor(i), Seq: s}
	}
	return recs
}

func idFor(i int) string { return string(rune('a'+i%26)) + string(rune('0'+i%10)) }

func TestSplitEvenCountRoundRobin(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(1)), 10)
	parts, st, err := Split(recs, 3, EvenCount)
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 10 {
		t.Errorf("records = %d", st.Records)
	}
	if len(parts[0]) != 4 || len(parts[1]) != 3 || len(parts[2]) != 3 {
		t.Errorf("part sizes = %d/%d/%d", len(parts[0]), len(parts[1]), len(parts[2]))
	}
	if parts[0][0].ID != recs[0].ID || parts[1][0].ID != recs[1].ID {
		t.Error("round-robin order broken")
	}
}

func TestSplitPreservesAllRecords(t *testing.T) {
	f := func(nRaw uint8, partsRaw uint8) bool {
		n := int(nRaw) % 100
		p := int(partsRaw)%10 + 1
		recs := randomRecords(rand.New(rand.NewSource(int64(nRaw)+1)), n)
		for _, mode := range []Mode{EvenCount, EvenBases} {
			parts, st, err := Split(recs, p, mode)
			if err != nil || st.Records != n {
				return false
			}
			seen := map[string]int{}
			total := 0
			for _, part := range parts {
				for _, r := range part {
					seen[r.ID]++
					total++
				}
			}
			if total != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSplitEvenBasesBalances(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(2)), 200)
	parts, _, err := Split(recs, 8, EvenBases)
	if err != nil {
		t.Fatal(err)
	}
	loads := PartBases(parts)
	min, max := loads[0], loads[0]
	var total int
	for _, l := range loads {
		if l < min {
			min = l
		}
		if l > max {
			max = l
		}
		total += l
	}
	mean := total / len(loads)
	// Greedy balancing should land every part within (mean + max record).
	if max > mean*2 {
		t.Errorf("EvenBases imbalance: min=%d max=%d mean=%d", min, max, mean)
	}
	// And must be no worse than round-robin on the same input.
	rr, _, _ := Split(recs, 8, EvenCount)
	rrLoads := PartBases(rr)
	rrMax := 0
	for _, l := range rrLoads {
		if l > rrMax {
			rrMax = l
		}
	}
	if max > rrMax {
		t.Errorf("EvenBases max %d worse than EvenCount max %d", max, rrMax)
	}
}

func TestSplitErrors(t *testing.T) {
	if _, _, err := Split(nil, 0, EvenCount); err == nil {
		t.Error("accepted 0 parts")
	}
	if _, _, err := Split(nil, 2, Mode(99)); err == nil {
		t.Error("accepted unknown mode")
	}
}

func TestSplitMorePartsThanRecords(t *testing.T) {
	recs := randomRecords(rand.New(rand.NewSource(3)), 2)
	parts, _, err := Split(recs, 5, EvenBases)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	for _, p := range parts {
		if len(p) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 2 {
		t.Errorf("non-empty parts = %d, want 2", nonEmpty)
	}
}

func TestSplitFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "contigs.fa")
	recs := randomRecords(rand.New(rand.NewSource(4)), 9)
	if err := seq.WriteFastaFile(path, recs); err != nil {
		t.Fatal(err)
	}
	paths, st, err := SplitFile(path, 3, EvenCount)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 3 || st.Records != 9 {
		t.Fatalf("paths=%d records=%d", len(paths), st.Records)
	}
	total := 0
	for _, p := range paths {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("part file missing: %v", err)
		}
		back, err := seq.ReadFastaFile(p)
		if err != nil {
			t.Fatal(err)
		}
		total += len(back)
	}
	if total != 9 {
		t.Errorf("reread %d records, want 9", total)
	}
}

// TestSplitExactMultiples is the boundary-bug sweep for the splitter
// (the PR 1 len%128==0 class): part counts that divide the record count
// exactly, n == records, and n == 1 must neither lose the last record
// nor leave a part that should be full empty.
func TestSplitExactMultiples(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name    string
		records int
		n       int
	}{
		{"records%n==0", 128, 8},
		{"records==n", 16, 16},
		{"records==2n", 32, 16},
		{"n==1", 64, 1},
		{"records%n==0 odd", 63, 9},
	}
	for _, mode := range []Mode{EvenCount, EvenBases} {
		for _, tc := range cases {
			t.Run(mode.String()+"/"+tc.name, func(t *testing.T) {
				recs := randomRecords(rng, tc.records)
				parts, st, err := Split(recs, tc.n, mode)
				if err != nil {
					t.Fatal(err)
				}
				if st.Records != tc.records {
					t.Errorf("stats counted %d of %d records", st.Records, tc.records)
				}
				seen := map[string]int{}
				total := 0
				for p, part := range parts {
					if tc.records%tc.n == 0 && len(part) == 0 {
						t.Errorf("part %d empty with %d records over %d parts", p, tc.records, tc.n)
					}
					for _, r := range part {
						seen[r.ID]++
						total++
					}
				}
				if total != tc.records {
					t.Errorf("split kept %d of %d records", total, tc.records)
				}
				for id, c := range seen {
					if c != 1 {
						t.Errorf("record %q placed %d times", id, c)
					}
				}
			})
		}
	}
}

// SplitIndices is the offset-table form of Split: for every mode the
// two must agree part by part, record by record, and the indices must
// be a permutation of [0, n) in ascending order within each part.
func TestSplitIndicesMatchesSplit(t *testing.T) {
	records := randomRecords(rand.New(rand.NewSource(11)), 37)
	for _, mode := range []Mode{EvenCount, EvenBases} {
		for _, n := range []int{1, 2, 3, 5, 8, 40} {
			idx, stI, err := SplitIndices(records, n, mode)
			if err != nil {
				t.Fatal(err)
			}
			parts, stS, err := Split(records, n, mode)
			if err != nil {
				t.Fatal(err)
			}
			if stI != stS {
				t.Errorf("mode=%v n=%d: stats %+v vs %+v", mode, n, stI, stS)
			}
			seen := make([]bool, len(records))
			for p := range idx {
				if len(idx[p]) != len(parts[p]) {
					t.Fatalf("mode=%v n=%d part %d: %d indices vs %d records", mode, n, p, len(idx[p]), len(parts[p]))
				}
				last := -1
				for j, i := range idx[p] {
					if records[i].ID != parts[p][j].ID {
						t.Fatalf("mode=%v n=%d part %d[%d]: index %d names %s, Split placed %s",
							mode, n, p, j, i, records[i].ID, parts[p][j].ID)
					}
					if i <= last {
						t.Fatalf("mode=%v n=%d part %d: indices not ascending: %v", mode, n, p, idx[p])
					}
					last = i
					if seen[i] {
						t.Fatalf("mode=%v n=%d: record %d assigned twice", mode, n, i)
					}
					seen[i] = true
				}
			}
			for i, ok := range seen {
				if !ok {
					t.Fatalf("mode=%v n=%d: record %d unassigned", mode, n, i)
				}
			}
		}
	}
}

func TestSplitIndicesErrors(t *testing.T) {
	if _, _, err := SplitIndices(nil, 0, EvenCount); err == nil {
		t.Error("accepted zero parts")
	}
	if _, _, err := SplitIndices(nil, 2, Mode(99)); err == nil {
		t.Error("accepted unknown mode")
	}
}
