// Package pyfasta reproduces the role PyFasta plays in the paper: a
// single-threaded utility that evenly splits a FASTA file of target
// sequences into N parts, one per MPI rank, so an unmodified aligner
// can run on each part in parallel (§III-A). The paper observes the
// split itself becomes the bottleneck at scale (Fig. 10), so the
// splitter also meters the bytes it scans.
package pyfasta

import (
	"fmt"
	"path/filepath"

	"gotrinity/internal/seq"
)

// Mode selects the partitioning strategy.
type Mode int

const (
	// EvenCount assigns records round-robin, equalising record counts —
	// pyfasta split -n's default behaviour.
	EvenCount Mode = iota
	// EvenBases greedily assigns each record (longest first is NOT used;
	// input order is preserved per part) to the part with the fewest
	// bases so far, equalising base totals under skewed length
	// distributions.
	EvenBases
)

func (m Mode) String() string {
	switch m {
	case EvenCount:
		return "evencount"
	case EvenBases:
		return "evenbases"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Stats meters the splitting work: the splitter is single threaded, so
// its cost scales with total bytes regardless of the part count.
type Stats struct {
	Records    int
	BasesTotal int
}

// SplitIndices partitions the record *indices* into n parts under the
// given mode, preserving input order within each part. The indices are
// the offset table a distributed aligner needs to map a partition's
// local contig numbers back to global ones without any per-alignment
// name lookup: global = part[local].
func SplitIndices(records []seq.Record, n int, mode Mode) ([][]int, Stats, error) {
	if n <= 0 {
		return nil, Stats{}, fmt.Errorf("pyfasta: part count %d must be positive", n)
	}
	parts := make([][]int, n)
	var st Stats
	switch mode {
	case EvenCount:
		for i := range records {
			p := i % n
			parts[p] = append(parts[p], i)
			st.Records++
			st.BasesTotal += len(records[i].Seq)
		}
	case EvenBases:
		load := make([]int, n)
		for i := range records {
			best := 0
			for p := 1; p < n; p++ {
				if load[p] < load[best] {
					best = p
				}
			}
			parts[best] = append(parts[best], i)
			load[best] += len(records[i].Seq)
			st.Records++
			st.BasesTotal += len(records[i].Seq)
		}
	default:
		return nil, Stats{}, fmt.Errorf("pyfasta: unknown mode %d", mode)
	}
	return parts, st, nil
}

// Split partitions records into n parts under the given mode. Parts
// may be empty when n exceeds the record count.
func Split(records []seq.Record, n int, mode Mode) ([][]seq.Record, Stats, error) {
	idx, st, err := SplitIndices(records, n, mode)
	if err != nil {
		return nil, st, err
	}
	parts := make([][]seq.Record, n)
	for p, ids := range idx {
		if len(ids) == 0 {
			continue
		}
		parts[p] = make([]seq.Record, len(ids))
		for j, i := range ids {
			parts[p][j] = records[i]
		}
	}
	return parts, st, nil
}

// SplitFile reads a FASTA file, splits it into n parts, and writes
// them alongside the input as <stem>.partK.fa, returning the part
// paths.
func SplitFile(path string, n int, mode Mode) ([]string, Stats, error) {
	records, err := seq.ReadFastaFile(path)
	if err != nil {
		return nil, Stats{}, err
	}
	parts, st, err := Split(records, n, mode)
	if err != nil {
		return nil, st, err
	}
	ext := filepath.Ext(path)
	stem := path[:len(path)-len(ext)]
	paths := make([]string, n)
	for p := range parts {
		paths[p] = fmt.Sprintf("%s.part%d.fa", stem, p)
		if err := seq.WriteFastaFile(paths[p], parts[p]); err != nil {
			return nil, st, err
		}
	}
	return paths, st, nil
}

// PartBases returns the per-part base totals, the balance measure the
// EvenBases mode optimises.
func PartBases(parts [][]seq.Record) []int {
	out := make([]int, len(parts))
	for p, recs := range parts {
		for _, r := range recs {
			out[p] += len(r.Seq)
		}
	}
	return out
}
