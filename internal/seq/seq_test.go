package seq

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestComplementBases(t *testing.T) {
	cases := map[byte]byte{'A': 'T', 'C': 'G', 'G': 'C', 'T': 'A', 'N': 'N', 'X': 'N', 'a': 'T'}
	for in, want := range cases {
		if got := Complement(in); got != want {
			t.Errorf("Complement(%c) = %c, want %c", in, got, want)
		}
	}
}

func TestReverseComplement(t *testing.T) {
	got := ReverseComplement([]byte("ACGTN"))
	if string(got) != "NACGT" {
		t.Errorf("ReverseComplement(ACGTN) = %s, want NACGT", got)
	}
}

func TestReverseComplementInPlaceMatchesAllocating(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := rng.Intn(64)
		s := randomDNA(rng, n)
		want := ReverseComplement(s)
		in := append([]byte(nil), s...)
		ReverseComplementInPlace(in)
		if !bytes.Equal(in, want) {
			t.Fatalf("in-place rc mismatch for %s: got %s want %s", s, in, want)
		}
	}
}

// Reverse complement must be an involution on ACGT sequences.
func TestReverseComplementInvolution(t *testing.T) {
	f := func(raw []byte) bool {
		s := Upper(append([]byte(nil), raw...))
		rc := ReverseComplement(ReverseComplement(s))
		return bytes.Equal(rc, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBaseIndexRoundTrip(t *testing.T) {
	for _, b := range []byte("ACGT") {
		code, ok := BaseIndex(b)
		if !ok {
			t.Fatalf("BaseIndex(%c) not ok", b)
		}
		if got := IndexBase(code); got != b {
			t.Errorf("IndexBase(BaseIndex(%c)) = %c", b, got)
		}
	}
	if _, ok := BaseIndex('N'); ok {
		t.Error("BaseIndex(N) should not be ok")
	}
}

func TestUpperNormalises(t *testing.T) {
	got := Upper([]byte("acgtXn-7"))
	if string(got) != "ACGTNNNN" {
		t.Errorf("Upper = %s, want ACGTNNNN", got)
	}
}

func TestComputeStatsN50(t *testing.T) {
	recs := []Record{
		{ID: "a", Seq: bytes.Repeat([]byte{'A'}, 100)},
		{ID: "b", Seq: bytes.Repeat([]byte{'A'}, 200)},
		{ID: "c", Seq: bytes.Repeat([]byte{'A'}, 700)},
	}
	st := ComputeStats(recs)
	if st.Count != 3 || st.TotalBases != 1000 {
		t.Fatalf("stats count/total = %d/%d", st.Count, st.TotalBases)
	}
	if st.N50 != 700 {
		t.Errorf("N50 = %d, want 700", st.N50)
	}
	if st.MinLen != 100 || st.MaxLen != 700 {
		t.Errorf("min/max = %d/%d", st.MinLen, st.MaxLen)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	st := ComputeStats(nil)
	if st.Count != 0 || st.N50 != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestFastaRoundTrip(t *testing.T) {
	recs := []Record{
		{ID: "r1", Desc: "first read", Seq: []byte("ACGTACGTACGT")},
		{ID: "r2", Seq: []byte("GGGGCCCCAAAATTTT")},
		{ID: "empty", Seq: []byte{}},
	}
	var buf bytes.Buffer
	fw := NewFastaWriter(&buf)
	fw.Wrap = 5
	for i := range recs {
		if err := fw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewFastaReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip count = %d, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID || !bytes.Equal(got[i].Seq, recs[i].Seq) {
			t.Errorf("record %d mismatch: %+v vs %+v", i, got[i], recs[i])
		}
	}
	if got[0].Desc != "first read" {
		t.Errorf("desc = %q", got[0].Desc)
	}
}

func TestFastaReaderMultiline(t *testing.T) {
	in := ">x a b\nACGT\nacgt\n\n>y\nTTTT\n"
	recs, err := NewFastaReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records", len(recs))
	}
	if string(recs[0].Seq) != "ACGTACGT" {
		t.Errorf("seq = %s", recs[0].Seq)
	}
	if recs[0].ID != "x" || recs[0].Desc != "a b" {
		t.Errorf("header = %q %q", recs[0].ID, recs[0].Desc)
	}
	if string(recs[1].Seq) != "TTTT" {
		t.Errorf("seq2 = %s", recs[1].Seq)
	}
}

func TestFastaReaderMalformed(t *testing.T) {
	_, err := NewFastaReader(strings.NewReader("ACGT\n")).Read()
	if err == nil {
		t.Error("expected error for missing header")
	}
}

func TestFastaReaderEmptyInput(t *testing.T) {
	_, err := NewFastaReader(strings.NewReader("")).Read()
	if err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestFastaReaderNoTrailingNewline(t *testing.T) {
	recs, err := NewFastaReader(strings.NewReader(">a\nACG")).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || string(recs[0].Seq) != "ACG" {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestFastqRoundTrip(t *testing.T) {
	recs := []Record{
		{ID: "q1", Seq: []byte("ACGT"), Qual: []byte("IIII")},
		{ID: "q2", Desc: "pair/1", Seq: []byte("GGCC"), Qual: []byte("!!!!")},
	}
	var buf bytes.Buffer
	fw := NewFastqWriter(&buf)
	for i := range recs {
		if err := fw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	got, err := NewFastqReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	for i := range recs {
		if got[i].ID != recs[i].ID || !bytes.Equal(got[i].Seq, recs[i].Seq) ||
			!bytes.Equal(got[i].Qual, recs[i].Qual) {
			t.Errorf("record %d mismatch", i)
		}
	}
}

func TestFastqWriterSynthesisesQuality(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFastqWriter(&buf)
	if err := fw.Write(&Record{ID: "x", Seq: []byte("ACG")}); err != nil {
		t.Fatal(err)
	}
	fw.Flush()
	got, err := NewFastqReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if string(got[0].Qual) != "III" {
		t.Errorf("qual = %s", got[0].Qual)
	}
}

func TestFastqMalformed(t *testing.T) {
	cases := []string{
		">a\nACGT\n+\nIIII\n", // FASTA header in FASTQ
		"@a\nACGT\nIIII\n",    // missing '+'
		"@a\nACGT\n+\nII\n",   // quality length mismatch
	}
	for _, in := range cases {
		if _, err := NewFastqReader(strings.NewReader(in)).Read(); err == nil {
			t.Errorf("expected error for %q", in)
		}
	}
}

func randomDNA(rng *rand.Rand, n int) []byte {
	s := make([]byte, n)
	for i := range s {
		s[i] = "ACGT"[rng.Intn(4)]
	}
	return s
}

func BenchmarkReverseComplement(b *testing.B) {
	s := randomDNA(rand.New(rand.NewSource(7)), 1000)
	b.SetBytes(int64(len(s)))
	for i := 0; i < b.N; i++ {
		ReverseComplementInPlace(s)
	}
}
