package seq

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

// randSeq draws a sequence over ACGTN with the given N probability (in
// percent), exercising word boundaries via the caller's length choice.
func randSeq(rng *rand.Rand, n, nPct int) []byte {
	s := make([]byte, n)
	for i := range s {
		if rng.Intn(100) < nPct {
			s[i] = 'N'
		} else {
			s[i] = "ACGT"[rng.Intn(4)]
		}
	}
	return s
}

// asciiMismatch is the byte-wise reference for MismatchRange: count
// differing positions with the alignment loop's early exit, returning
// the mismatch count and the number of loop iterations.
func asciiMismatch(a, b []byte, budget int) (mm, examined int) {
	off := 0
	for ; off < len(a) && mm < budget; off++ {
		if a[off] != b[off] {
			mm++
		}
	}
	return mm, off
}

var packLengths = []int{0, 1, 2, 31, 32, 33, 63, 64, 65, 100, 127, 128, 129, 1000}

func TestPackedRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range packLengths {
		for _, nPct := range []int{0, 3, 30} {
			s := randSeq(rng, n, nPct)
			p := Pack(s)
			if p.Len() != n {
				t.Fatalf("len(%d,N%d%%): got %d", n, nPct, p.Len())
			}
			if got := p.Decode(); !bytes.Equal(got, s) {
				t.Fatalf("roundtrip(%d,N%d%%):\n got %q\nwant %q", n, nPct, got, s)
			}
			for i := 0; i < n; i++ {
				if got := p.Base(i); got != s[i] {
					t.Fatalf("Base(%d) = %c, want %c", i, got, s[i])
				}
				if p.IsN(i) != (s[i] == 'N') {
					t.Fatalf("IsN(%d) = %v for %c", i, p.IsN(i), s[i])
				}
			}
		}
	}
}

func TestPackedLowercaseAndAmbiguous(t *testing.T) {
	// Pack must mirror Upper: lower-case maps up, anything else is N.
	in := []byte("acgtACGTnXY-tz")
	want := Upper(append([]byte(nil), in...))
	if got := Pack(in).Decode(); !bytes.Equal(got, want) {
		t.Fatalf("got %q want %q", got, want)
	}
}

func TestPackedNRunEdgeCases(t *testing.T) {
	cases := []string{
		"NACGT",            // leading N
		"ACGTN",            // trailing N
		"NNNNN",            // all N
		"NNNNNNNNNNNNNNNN", // all N, longer
		"N",                // single N
		"ANNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNA", // run spanning words
		strings.Repeat("N", 32),              // exactly one word of N
		strings.Repeat("N", 33),              // word boundary +1
		"ACGTNNACGTNNACGT",                   // multiple runs
		strings.Repeat("AN", 40),             // alternating
		"NNNN" + strings.Repeat("ACGT", 20),  // leading run then solid
		strings.Repeat("ACGT", 20) + "NNNNN", // solid then trailing run
	}
	for _, s := range cases {
		p := Pack([]byte(s))
		if got := string(p.Decode()); got != s {
			t.Fatalf("decode %q: got %q", s, got)
		}
		// Canonical invariants: N slots store code 0, padding is zero.
		for i := 0; i < p.Len(); i++ {
			if p.IsN(i) && p.CodeAt(i) != 0 {
				t.Fatalf("%q: N slot %d stores code %d", s, i, p.CodeAt(i))
			}
		}
		if top := uint(p.Len() & 31); top != 0 && p.NumWords() > 0 {
			if pad := p.Word(p.NumWords()-1) &^ ((uint64(1) << (top * 2)) - 1); pad != 0 {
				t.Fatalf("%q: nonzero padding %x", s, pad)
			}
		}
		// RC must match the ASCII reference (complement of N is N).
		want := ReverseComplement([]byte(s))
		rc := p.ReverseComplement()
		if got := string(rc.Decode()); got != string(want) {
			t.Fatalf("RC %q: got %q want %q", s, got, want)
		}
		// Wire roundtrip.
		enc := p.Encode()
		back, used, err := DecodePacked(enc)
		if err != nil || used != len(enc) {
			t.Fatalf("decode wire %q: used %d/%d err %v", s, used, len(enc), err)
		}
		if !back.Equal(p) || !bytes.Equal(back.Encode(), enc) {
			t.Fatalf("wire roundtrip %q not canonical", s)
		}
	}
}

func TestPackedReverseComplementDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range packLengths {
		for _, nPct := range []int{0, 5} {
			s := randSeq(rng, n, nPct)
			want := ReverseComplement(s)
			p := Pack(s)
			p.ReverseComplementInPlace()
			if got := p.Decode(); !bytes.Equal(got, want) {
				t.Fatalf("RC(%d,N%d%%):\n got %q\nwant %q", n, nPct, got, want)
			}
			// Double RC is the identity.
			p.ReverseComplementInPlace()
			if got := p.Decode(); !bytes.Equal(got, s) {
				t.Fatalf("RC²(%d,N%d%%) != id", n, nPct)
			}
		}
	}
}

func TestPackedSliceDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := randSeq(rng, 300, 4)
	p := Pack(s)
	for trial := 0; trial < 500; trial++ {
		i := rng.Intn(len(s) + 1)
		j := i + rng.Intn(len(s)-i+1)
		sub := p.Slice(i, j)
		if got := sub.Decode(); !bytes.Equal(got, s[i:j]) {
			t.Fatalf("slice[%d:%d]:\n got %q\nwant %q", i, j, got, s[i:j])
		}
	}
	// SliceInto reuses storage.
	var scratch Packed
	p.SliceInto(&scratch, 10, 200)
	p.SliceInto(&scratch, 5, 37)
	if got := scratch.Decode(); !bytes.Equal(got, s[5:37]) {
		t.Fatalf("SliceInto reuse: got %q want %q", got, s[5:37])
	}
}

func TestPackedCompareDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var pool [][]byte
	for trial := 0; trial < 120; trial++ {
		pool = append(pool, randSeq(rng, rng.Intn(70), 10))
	}
	// Targeted prefix/N cases on top of the random pool.
	pool = append(pool,
		[]byte("ACGT"), []byte("ACG"), []byte("ACGTA"), []byte("ACGN"),
		[]byte("ACGA"), []byte("ACGC"), []byte("ACGG"), []byte("ACGTT"),
		[]byte("N"), []byte("A"), []byte("T"), []byte(""), []byte("NA"), []byte("AN"))
	for _, a := range pool {
		for _, b := range pool {
			want := bytes.Compare(a, b)
			if got := Pack(a).Compare(Pack(b)); got != want {
				t.Fatalf("Compare(%q,%q) = %d, want %d", a, b, got, want)
			}
		}
	}
}

func TestPackedEqualRangeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSeq(rng, 200, 6)
	// b shares long stretches with a so equal ranges actually occur.
	b := append([]byte(nil), a...)
	for i := 0; i < 20; i++ {
		b[rng.Intn(len(b))] = "ACGTN"[rng.Intn(5)]
	}
	pa, pb := Pack(a), Pack(b)
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(80)
		i := rng.Intn(len(a) - n + 1)
		j := rng.Intn(len(b) - n + 1)
		want := bytes.Equal(a[i:i+n], b[j:j+n])
		if got := pa.EqualRange(i, pb, j, n); got != want {
			t.Fatalf("EqualRange(%d,%d,%d) = %v, want %v\n a=%q\n b=%q",
				i, j, n, got, want, a[i:i+n], b[j:j+n])
		}
	}
}

func TestPackedMismatchRangeDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randSeq(rng, 160, 5)
	b := append([]byte(nil), a...)
	for i := 0; i < 25; i++ {
		b[rng.Intn(len(b))] = "ACGTN"[rng.Intn(5)]
	}
	pa, pb := Pack(a), Pack(b)
	for trial := 0; trial < 3000; trial++ {
		n := rng.Intn(90)
		i := rng.Intn(len(a) - n + 1)
		j := rng.Intn(len(b) - n + 1)
		budget := rng.Intn(6) + 1
		wantMM, wantEx := asciiMismatch(a[i:i+n], b[j:j+n], budget)
		gotMM, gotEx := pa.MismatchRange(i, pb, j, n, budget)
		if gotMM != wantMM || gotEx != wantEx {
			t.Fatalf("MismatchRange(i=%d,j=%d,n=%d,budget=%d) = (%d,%d), want (%d,%d)\n a=%q\n b=%q",
				i, j, n, budget, gotMM, gotEx, wantMM, wantEx, a[i:i+n], b[j:j+n])
		}
	}
}

func TestPackedWireRejectsTruncation(t *testing.T) {
	p := Pack([]byte("ACGTNACGTACGTACGTACGTACGTACGTACGTACGT"))
	enc := p.Encode()
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodePacked(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d/%d accepted", cut, len(enc))
		}
	}
}

func TestPackRecords(t *testing.T) {
	recs := []Record{
		{ID: "r1", Desc: "first", Seq: []byte("ACGTN")},
		{ID: "r2", Seq: []byte("TTTT"), Qual: []byte("IIII")},
	}
	pr := PackRecords(recs)
	if len(pr) != 2 || pr[0].ID != "r1" || pr[0].Desc != "first" || pr[1].ID != "r2" {
		t.Fatalf("PackRecords metadata: %+v", pr)
	}
	for i := range pr {
		if got := pr[i].Seq.Decode(); !bytes.Equal(got, recs[i].Seq) {
			t.Fatalf("record %d: got %q want %q", i, got, recs[i].Seq)
		}
	}
}

func TestPackedMemBytes(t *testing.T) {
	// The headline claim: packed resident bytes are ~4x below ASCII
	// for solid sequences (plus sidecar for N runs).
	s := bytes.Repeat([]byte("ACGT"), 256) // 1024 bases
	p := Pack(s)
	if got, limit := p.MemBytes(), len(s)/2; got > limit {
		t.Fatalf("MemBytes %d > %d for %d ASCII bytes", got, limit, len(s))
	}
}

func FuzzPackedRoundTrip(f *testing.F) {
	f.Add([]byte("ACGTNACGT"), uint8(2), uint8(5))
	f.Add([]byte(""), uint8(0), uint8(0))
	f.Add([]byte("NNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNNN"), uint8(3), uint8(7))
	f.Add(bytes.Repeat([]byte("ACGTNT"), 30), uint8(17), uint8(40))
	f.Fuzz(func(t *testing.T, raw []byte, a, b uint8) {
		// Normalize exactly as ingest would; the packed path must then
		// agree with every ASCII reference operation.
		s := Upper(append([]byte(nil), raw...))
		p := Pack(s)
		if !bytes.Equal(p.Decode(), s) {
			t.Fatalf("decode mismatch")
		}
		// Slice: derive a valid window from the fuzzed offsets.
		if len(s) > 0 {
			i := int(a) % len(s)
			j := i + int(b)%(len(s)-i+1)
			sub := p.Slice(i, j)
			if !bytes.Equal(sub.Decode(), s[i:j]) {
				t.Fatalf("slice[%d:%d] mismatch", i, j)
			}
			rc := sub.ReverseComplement()
			if !bytes.Equal(rc.Decode(), ReverseComplement(s[i:j])) {
				t.Fatalf("RC slice mismatch")
			}
		}
		// RC round trip.
		rc := p.ReverseComplement()
		if !bytes.Equal(rc.Decode(), ReverseComplement(s)) {
			t.Fatalf("RC mismatch")
		}
		// Wire round trip stays canonical.
		enc := p.Encode()
		back, used, err := DecodePacked(enc)
		if err != nil || used != len(enc) || !back.Equal(p) {
			t.Fatalf("wire roundtrip: used %d/%d err %v", used, len(enc), err)
		}
		if !bytes.Equal(back.Encode(), enc) {
			t.Fatalf("re-encode not canonical")
		}
		// Compare is consistent with bytes.Compare against the RC.
		if want, got := bytes.Compare(s, ReverseComplement(s)), p.Compare(rc); want != got {
			t.Fatalf("Compare = %d, want %d", got, want)
		}
	})
}
