package seq

import (
	"math/rand"
	"testing"
)

// benchCorpus is a fixed read set shared by the packed benchmarks:
// 2000 × 150bp with sparse Ns, the shape of a laptop-scale RNA-seq
// slice.
func benchCorpus() []Record {
	rng := rand.New(rand.NewSource(99))
	reads := make([]Record, 2000)
	for i := range reads {
		s := make([]byte, 150)
		for j := range s {
			s[j] = "ACGT"[rng.Intn(4)]
		}
		if i%20 == 0 {
			s[rng.Intn(len(s))] = 'N'
		}
		reads[i] = Record{Seq: s}
	}
	return reads
}

// BenchmarkSeqPackedResidentBytes is the memory-ceiling pin of
// BENCH_seq.json: it reports the resident bytes of the corpus in both
// representations and their ratio. The packed form must stay ≥2×
// smaller (it is ~4× minus the N-run sidecars).
func BenchmarkSeqPackedResidentBytes(b *testing.B) {
	reads := benchCorpus()
	var packed []PackedRecord
	for i := 0; i < b.N; i++ {
		packed = PackRecords(reads)
	}
	ascii, resident := 0, 0
	for i := range reads {
		ascii += len(reads[i].Seq)
	}
	for i := range packed {
		resident += packed[i].Seq.MemBytes()
	}
	b.ReportMetric(float64(ascii), "ascii-B")
	b.ReportMetric(float64(resident), "packed-B")
	b.ReportMetric(float64(ascii)/float64(resident), "ascii/packed")
}

// BenchmarkSeqPack measures the one-time ingest packing cost.
func BenchmarkSeqPack(b *testing.B) {
	reads := benchCorpus()
	total := 0
	for i := range reads {
		total += len(reads[i].Seq)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reads {
			Pack(reads[j].Seq)
		}
	}
}

// BenchmarkSeqRevCompASCII / BenchmarkSeqRevCompPacked compare the
// byte-loop reverse complement against the word-wise packed kernel
// over the same corpus.
func BenchmarkSeqRevCompASCII(b *testing.B) {
	reads := benchCorpus()
	total := 0
	for i := range reads {
		total += len(reads[i].Seq)
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range reads {
			ReverseComplementInPlace(reads[j].Seq)
			ReverseComplementInPlace(reads[j].Seq) // restore
		}
	}
}

func BenchmarkSeqRevCompPacked(b *testing.B) {
	packed := PackRecords(benchCorpus())
	total := 0
	for i := range packed {
		total += packed[i].Seq.Len()
	}
	b.SetBytes(int64(total))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range packed {
			packed[j].Seq.ReverseComplementInPlace()
			packed[j].Seq.ReverseComplementInPlace() // restore
		}
	}
}
