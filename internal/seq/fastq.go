package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
)

// FastqReader streams records from four-line FASTQ input.
type FastqReader struct {
	br *bufio.Reader
}

// NewFastqReader wraps r in a streaming FASTQ parser.
func NewFastqReader(r io.Reader) *FastqReader {
	return &FastqReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next record, or io.EOF when input is exhausted.
func (fr *FastqReader) Read() (Record, error) {
	var rec Record
	header, err := fr.line()
	if err != nil {
		return rec, err
	}
	if len(header) == 0 || header[0] != '@' {
		return rec, fmt.Errorf("seq: malformed FASTQ header %q", truncate(header))
	}
	rec.ID, rec.Desc = splitHeader(header[1:])
	s, err := fr.line()
	if err != nil {
		return rec, fmt.Errorf("seq: truncated FASTQ record %s", rec.ID)
	}
	rec.Seq = Upper(s)
	plus, err := fr.line()
	if err != nil || len(plus) == 0 || plus[0] != '+' {
		return rec, fmt.Errorf("seq: missing '+' line in FASTQ record %s", rec.ID)
	}
	q, err := fr.line()
	if err != nil {
		return rec, fmt.Errorf("seq: truncated quality in FASTQ record %s", rec.ID)
	}
	if len(q) != len(rec.Seq) {
		return rec, fmt.Errorf("seq: quality length %d != sequence length %d in %s",
			len(q), len(rec.Seq), rec.ID)
	}
	rec.Qual = q
	return rec, nil
}

// ReadAll drains the reader into a slice of records.
func (fr *FastqReader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := fr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

func (fr *FastqReader) line() ([]byte, error) {
	for {
		raw, err := fr.br.ReadBytes('\n')
		if len(raw) == 0 && err != nil {
			return nil, io.EOF
		}
		raw = bytes.TrimRight(raw, "\r\n")
		if len(raw) == 0 && err == nil {
			continue // tolerate stray blank lines
		}
		out := make([]byte, len(raw))
		copy(out, raw)
		if err != nil && err != io.EOF {
			return nil, err
		}
		return out, nil
	}
}

// FastqWriter writes four-line FASTQ records.
type FastqWriter struct {
	bw *bufio.Writer
}

// NewFastqWriter returns a buffered FASTQ writer.
func NewFastqWriter(w io.Writer) *FastqWriter {
	return &FastqWriter{bw: bufio.NewWriterSize(w, 1<<16)}
}

// Write emits one record; a missing quality string is synthesised as
// maximum quality so FASTA-sourced records remain writable.
func (fw *FastqWriter) Write(rec *Record) error {
	q := rec.Qual
	if q == nil {
		q = bytes.Repeat([]byte{'I'}, len(rec.Seq))
	}
	header := rec.ID
	if rec.Desc != "" {
		header += " " + rec.Desc
	}
	_, err := fmt.Fprintf(fw.bw, "@%s\n%s\n+\n%s\n", header, rec.Seq, q)
	return err
}

// Flush commits buffered output.
func (fw *FastqWriter) Flush() error { return fw.bw.Flush() }
