// Package seq provides the nucleotide-sequence substrate used by every
// stage of the pipeline: the DNA alphabet, sequence records, reverse
// complementation, and summary statistics such as N50.
//
// Sequences are stored as upper-case ASCII bytes (A, C, G, T, N). All
// operations treat 'N' (and any other non-ACGT byte) as an ambiguous
// base: it never matches anything and never contributes a k-mer.
package seq

import (
	"fmt"
	"sort"
)

// Record is a single named sequence, as read from or written to a
// FASTA/FASTQ file.
type Record struct {
	// ID is the sequence identifier (the header up to the first space).
	ID string
	// Desc is the remainder of the header line, if any.
	Desc string
	// Seq is the sequence payload, upper-case ASCII.
	Seq []byte
	// Qual holds per-base quality bytes for FASTQ records; nil for FASTA.
	Qual []byte
}

// Len returns the number of bases in the record.
func (r *Record) Len() int { return len(r.Seq) }

// String renders the record as a one-line summary for diagnostics.
func (r *Record) String() string {
	return fmt.Sprintf("%s[%dbp]", r.ID, len(r.Seq))
}

// complement maps each ASCII base to its Watson-Crick complement.
// Ambiguous bases map to 'N'.
var complement [256]byte

func init() {
	for i := range complement {
		complement[i] = 'N'
	}
	complement['A'], complement['a'] = 'T', 'T'
	complement['C'], complement['c'] = 'G', 'G'
	complement['G'], complement['g'] = 'C', 'C'
	complement['T'], complement['t'] = 'A', 'A'
}

// Complement returns the Watson-Crick complement of a single base.
func Complement(b byte) byte { return complement[b] }

// ReverseComplement returns a newly allocated reverse complement of s.
func ReverseComplement(s []byte) []byte {
	out := make([]byte, len(s))
	for i, b := range s {
		out[len(s)-1-i] = complement[b]
	}
	return out
}

// ReverseComplementInPlace reverse-complements s without allocating.
func ReverseComplementInPlace(s []byte) {
	i, j := 0, len(s)-1
	for i < j {
		s[i], s[j] = complement[s[j]], complement[s[i]]
		i, j = i+1, j-1
	}
	if i == j {
		s[i] = complement[s[i]]
	}
}

// BaseIndex returns the 2-bit code of a base (A=0, C=1, G=2, T=3) and
// true, or 0 and false for an ambiguous base.
func BaseIndex(b byte) (uint64, bool) {
	switch b {
	case 'A', 'a':
		return 0, true
	case 'C', 'c':
		return 1, true
	case 'G', 'g':
		return 2, true
	case 'T', 't':
		return 3, true
	}
	return 0, false
}

// IndexBase is the inverse of BaseIndex for codes 0..3.
func IndexBase(code uint64) byte {
	return "ACGT"[code&3]
}

// Upper upper-cases a sequence in place and returns it. Non-ACGT bytes
// become 'N'.
func Upper(s []byte) []byte {
	for i, b := range s {
		switch b {
		case 'A', 'C', 'G', 'T':
		case 'a':
			s[i] = 'A'
		case 'c':
			s[i] = 'C'
		case 'g':
			s[i] = 'G'
		case 't':
			s[i] = 'T'
		default:
			s[i] = 'N'
		}
	}
	return s
}

// Stats summarises a set of sequence lengths.
type Stats struct {
	Count      int
	TotalBases int
	MinLen     int
	MaxLen     int
	MeanLen    float64
	N50        int
}

// ComputeStats derives summary statistics from the given records.
func ComputeStats(recs []Record) Stats {
	var st Stats
	if len(recs) == 0 {
		return st
	}
	lengths := make([]int, len(recs))
	st.Count = len(recs)
	st.MinLen = recs[0].Len()
	for i := range recs {
		n := recs[i].Len()
		lengths[i] = n
		st.TotalBases += n
		if n < st.MinLen {
			st.MinLen = n
		}
		if n > st.MaxLen {
			st.MaxLen = n
		}
	}
	st.MeanLen = float64(st.TotalBases) / float64(st.Count)
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	half := st.TotalBases / 2
	run := 0
	for _, n := range lengths {
		run += n
		if run >= half {
			st.N50 = n
			break
		}
	}
	return st
}
