package seq

import (
	"bytes"
	"testing"
)

// The parsers must never panic on arbitrary input — they parse files
// users hand the pipeline.

func FuzzFastaReader(f *testing.F) {
	f.Add([]byte(">a desc\nACGT\nNNNN\n>b\nTT\n"))
	f.Add([]byte(""))
	f.Add([]byte(">"))
	f.Add([]byte("no header\nACGT"))
	f.Add([]byte(">x\n\n\n>y"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := NewFastaReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			return
		}
		for _, r := range recs {
			for _, b := range r.Seq {
				switch b {
				case 'A', 'C', 'G', 'T', 'N':
				default:
					t.Fatalf("unnormalised base %q in parsed record", b)
				}
			}
		}
	})
}

func FuzzFastqReader(f *testing.F) {
	f.Add([]byte("@a\nACGT\n+\nIIII\n"))
	f.Add([]byte("@a\nACGT\n+"))
	f.Add([]byte("@\n\n+\n\n"))
	f.Add([]byte("garbage"))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := NewFastqReader(bytes.NewReader(data)).ReadAll()
		if err != nil {
			return
		}
		for _, r := range recs {
			if len(r.Qual) != len(r.Seq) {
				t.Fatal("accepted record with mismatched quality length")
			}
		}
	})
}
