package seq

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestReadWriteFastaFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "x.fa")
	recs := []Record{
		{ID: "a", Desc: "first", Seq: []byte("ACGTACGT")},
		{ID: "b", Seq: []byte("TTTT")},
	}
	if err := WriteFastaFile(path, recs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFastaFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].ID != "a" || !bytes.Equal(back[1].Seq, recs[1].Seq) {
		t.Errorf("round trip = %+v", back)
	}
}

func TestReadFastaFileMissing(t *testing.T) {
	if _, err := ReadFastaFile("/nonexistent/path.fa"); err == nil {
		t.Error("accepted missing file")
	}
}

func TestWriteFastaFileBadDir(t *testing.T) {
	if err := WriteFastaFile("/nonexistent/dir/x.fa", nil); err == nil {
		t.Error("accepted unwritable path")
	}
}

func TestFastaWriterNoWrap(t *testing.T) {
	var buf bytes.Buffer
	fw := NewFastaWriter(&buf)
	fw.Wrap = 0
	long := bytes.Repeat([]byte{'A'}, 200)
	if err := fw.Write(&Record{ID: "x", Seq: long}); err != nil {
		t.Fatal(err)
	}
	fw.Flush()
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte{'\n'})
	if len(lines) != 2 {
		t.Errorf("unwrapped output has %d lines", len(lines))
	}
	if len(lines[1]) != 200 {
		t.Errorf("sequence line length %d", len(lines[1]))
	}
}

func TestRecordString(t *testing.T) {
	r := Record{ID: "x", Seq: []byte("ACGT")}
	if got := r.String(); got != "x[4bp]" {
		t.Errorf("String = %q", got)
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d", r.Len())
	}
}
