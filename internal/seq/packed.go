// 2-bit packed sequences. Packed stores a DNA sequence at four bases
// per byte (A=00, C=01, G=10, T=11, the same codes as BaseIndex) with
// an N-run sidecar for ambiguous bases, so the hot paths — k-mer
// extraction, welding, alignment — work on 64-bit words instead of
// ASCII bytes. ASCII survives only at file boundaries.
//
// Layout: base i lives in words[i/32] at bit offset 2*(i%32), low bits
// first, so the lowest 2-bit group of a word is the earliest base —
// the first code difference between two aligned words is found with a
// trailing-zero count. Two invariants make word-wise comparison and
// hashing well defined:
//
//   - every N slot stores code 0 (the runs sidecar is the only record
//     of ambiguity), and
//   - padding bits past the last base are zero.
//
// Every operation below preserves both. Equality and ordering follow
// the ASCII semantics exactly: 'N' compares equal to 'N', the
// complement of 'N' is 'N', and byte order is 'A' < 'C' < 'G' < 'N'
// < 'T' (rank 3 for N sits between G and T because 'N' = 0x4E falls
// between 'G' = 0x47 and 'T' = 0x54).
package seq

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Run is one maximal interval of ambiguous bases in a packed sequence.
type Run struct {
	Start int32 // first N position
	Len   int32 // number of consecutive Ns, > 0
}

// Packed is an immutable-by-convention 2-bit packed sequence. The zero
// value is an empty sequence. Methods with an Into/InPlace suffix are
// the only mutators; everything else treats the receiver as read-only,
// so sub-slices returned by Slice may share words with their parent.
type Packed struct {
	words []uint64
	runs  []Run // sorted, maximal, non-overlapping
	n     int
}

// PackedRecord is a named packed sequence — the packed twin of Record.
// Qualities are dropped: no pipeline stage past ingest reads them.
type PackedRecord struct {
	ID   string
	Desc string
	Seq  Packed
}

// Pack converts an ASCII sequence to packed form. Any byte that is not
// ACGT (either case) becomes an N run, exactly like Upper.
func Pack(s []byte) Packed {
	var p Packed
	PackInto(&p, s)
	return p
}

// PackInto packs s into dst, reusing dst's word and run storage.
func PackInto(dst *Packed, s []byte) {
	nw := (len(s) + 31) / 32
	if cap(dst.words) < nw {
		dst.words = make([]uint64, nw)
	} else {
		dst.words = dst.words[:nw]
		for i := range dst.words {
			dst.words[i] = 0
		}
	}
	dst.runs = dst.runs[:0]
	dst.n = len(s)
	for i := 0; i < len(s); i++ {
		code, ok := BaseIndex(s[i])
		if !ok {
			if nr := len(dst.runs); nr > 0 && int(dst.runs[nr-1].Start+dst.runs[nr-1].Len) == i {
				dst.runs[nr-1].Len++
			} else {
				dst.runs = append(dst.runs, Run{Start: int32(i), Len: 1})
			}
			continue // code 0, word bits already zero
		}
		dst.words[i>>5] |= code << uint((i&31)<<1)
	}
}

// PackRecords packs a slice of records, keeping IDs and descriptions.
func PackRecords(recs []Record) []PackedRecord {
	out := make([]PackedRecord, len(recs))
	for i := range recs {
		out[i] = PackedRecord{ID: recs[i].ID, Desc: recs[i].Desc, Seq: Pack(recs[i].Seq)}
	}
	return out
}

// Len returns the number of bases.
func (p Packed) Len() int { return p.n }

// NumRuns returns the number of N runs.
func (p Packed) NumRuns() int { return len(p.runs) }

// RunAt returns the i-th N run.
func (p Packed) RunAt(i int) Run { return p.runs[i] }

// NumWords returns the number of 64-bit words backing the sequence.
func (p Packed) NumWords() int { return len(p.words) }

// Word returns the i-th backing word (32 bases, low bits first).
func (p Packed) Word(i int) uint64 { return p.words[i] }

// CodeAt returns the stored 2-bit code of base i. N slots return 0;
// use IsN (or a run cursor) to distinguish them from 'A'.
func (p Packed) CodeAt(i int) uint64 {
	return p.words[i>>5] >> uint((i&31)<<1) & 3
}

// IsN reports whether base i is ambiguous.
func (p Packed) IsN(i int) bool {
	lo, hi := 0, len(p.runs)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(p.runs[mid].Start+p.runs[mid].Len) <= i {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(p.runs) && int(p.runs[lo].Start) <= i
}

// Base returns the ASCII base at position i.
func (p Packed) Base(i int) byte {
	if p.IsN(i) {
		return 'N'
	}
	return IndexBase(p.CodeAt(i))
}

// MemBytes returns the resident size of the packed payload: words plus
// the N-run sidecar. IDs and struct headers are excluded so the number
// is directly comparable with len(Record.Seq) on the ASCII path.
func (p Packed) MemBytes() int { return len(p.words)*8 + len(p.runs)*8 }

// window reads 32 bases starting at pos into one word (earliest base
// in the low bits). Bases past the end read as zero. pos must be >= 0.
func (p Packed) window(pos int) uint64 {
	wi, sh := pos>>5, uint((pos&31)<<1)
	if wi >= len(p.words) {
		return 0
	}
	v := p.words[wi] >> sh
	if sh != 0 && wi+1 < len(p.words) {
		v |= p.words[wi+1] << (64 - sh)
	}
	return v
}

// AppendDecode appends the ASCII form of the sequence to dst.
func (p Packed) AppendDecode(dst []byte) []byte {
	return p.AppendDecodeRange(dst, 0, p.n)
}

// Decode returns the sequence as newly allocated ASCII bytes.
func (p Packed) Decode() []byte {
	return p.AppendDecode(make([]byte, 0, p.n))
}

// String renders the decoded sequence (diagnostics only).
func (p Packed) String() string { return string(p.Decode()) }

// AppendDecodeRange appends the ASCII form of bases [start, start+n)
// to dst.
func (p Packed) AppendDecodeRange(dst []byte, start, n int) []byte {
	if start < 0 || n < 0 || start+n > p.n {
		panic(fmt.Sprintf("seq: decode range [%d,%d) of %d bases", start, start+n, p.n))
	}
	base := len(dst)
	for i := start; i < start+n; i++ {
		dst = append(dst, IndexBase(p.CodeAt(i)))
	}
	for _, r := range p.runs {
		rs, re := int(r.Start), int(r.Start+r.Len)
		if rs < start {
			rs = start
		}
		if re > start+n {
			re = start + n
		}
		for i := rs; i < re; i++ {
			dst[base+i-start] = 'N'
		}
	}
	return dst
}

// Slice returns bases [start, end) as a new packed sequence.
func (p Packed) Slice(start, end int) Packed {
	var out Packed
	p.SliceInto(&out, start, end)
	return out
}

// SliceInto extracts bases [start, end) into dst, reusing dst's
// storage. dst must not alias p.
func (p Packed) SliceInto(dst *Packed, start, end int) {
	if start < 0 || end < start || end > p.n {
		panic(fmt.Sprintf("seq: slice [%d,%d) of %d bases", start, end, p.n))
	}
	n := end - start
	nw := (n + 31) / 32
	if cap(dst.words) < nw {
		dst.words = make([]uint64, nw)
	} else {
		dst.words = dst.words[:nw]
	}
	dst.runs = dst.runs[:0]
	dst.n = n
	for i := 0; i < nw; i++ {
		dst.words[i] = p.window(start + i*32)
	}
	if nw > 0 { // zero padding past the last base
		if top := uint(n & 31); top != 0 {
			dst.words[nw-1] &= (uint64(1) << (top * 2)) - 1
		}
	}
	for _, r := range p.runs {
		rs, re := int(r.Start), int(r.Start+r.Len)
		if re <= start || rs >= end {
			continue
		}
		if rs < start {
			rs = start
		}
		if re > end {
			re = end
		}
		dst.runs = append(dst.runs, Run{Start: int32(rs - start), Len: int32(re - rs)})
	}
}

// revComp2 reverses the 32 2-bit groups of a word and complements each
// — the word-granular kernel of ReverseComplementInPlace, the same
// O(log w) bit-twiddle as kmer.Kmer.ReverseComplement.
func revComp2(v uint64) uint64 {
	v = ^v
	v = bits.ReverseBytes64(v)
	v = (v&0xf0f0f0f0f0f0f0f0)>>4 | (v&0x0f0f0f0f0f0f0f0f)<<4
	v = (v&0xcccccccccccccccc)>>2 | (v&0x3333333333333333)<<2
	return v
}

// ReverseComplementInPlace reverse-complements the sequence without
// allocating: each word is complemented and group-reversed in O(log w)
// operations, the word order is reversed, and one funnel shift drops
// the padding that lands at the front. N slots are re-zeroed (the
// complement of N is N) and the run sidecar is mirrored.
func (p *Packed) ReverseComplementInPlace() {
	w := p.words
	for i := range w {
		w[i] = revComp2(w[i])
	}
	for i, j := 0, len(w)-1; i < j; i, j = i+1, j-1 {
		w[i], w[j] = w[j], w[i]
	}
	if s := uint((len(w)*32 - p.n) * 2); s != 0 && len(w) > 0 {
		for i := 0; i < len(w)-1; i++ {
			w[i] = w[i]>>s | w[i+1]<<(64-s)
		}
		w[len(w)-1] >>= s
	}
	// Mirror the N runs and restore the all-zero-slot invariant (the
	// complement pass turned their stored 0s into 3s).
	for i, j := 0, len(p.runs)-1; i < j; i, j = i+1, j-1 {
		p.runs[i], p.runs[j] = p.runs[j], p.runs[i]
	}
	for i := range p.runs {
		p.runs[i].Start = int32(p.n) - p.runs[i].Start - p.runs[i].Len
	}
	for _, r := range p.runs {
		p.zeroRange(int(r.Start), int(r.Len))
	}
}

// ReverseComplementInto writes the reverse complement of p into dst,
// reusing dst's storage. dst must not alias p.
func (p Packed) ReverseComplementInto(dst *Packed) {
	if cap(dst.words) < len(p.words) {
		dst.words = make([]uint64, len(p.words))
	} else {
		dst.words = dst.words[:len(p.words)]
	}
	copy(dst.words, p.words)
	if cap(dst.runs) < len(p.runs) {
		dst.runs = make([]Run, len(p.runs))
	} else {
		dst.runs = dst.runs[:len(p.runs)]
	}
	copy(dst.runs, p.runs)
	dst.n = p.n
	dst.ReverseComplementInPlace()
}

// ReverseComplement returns a newly allocated reverse complement.
func (p Packed) ReverseComplement() Packed {
	var out Packed
	p.ReverseComplementInto(&out)
	return out
}

// zeroRange clears the stored codes of bases [start, start+n).
func (p *Packed) zeroRange(start, n int) {
	for n > 0 {
		wi, off := start>>5, start&31
		span := 32 - off
		if span > n {
			span = n
		}
		mask := ^uint64(0)
		if span < 32 {
			mask = (uint64(1) << (uint(span) * 2)) - 1
		}
		p.words[wi] &^= mask << uint(off*2)
		start += span
		n -= span
	}
}

// EqualRange reports whether bases [i, i+n) of p equal bases [j, j+n)
// of q under ASCII semantics: codes must match and the N positions
// must coincide ('N' == 'N', but 'N' != 'A' even though both store
// code 0).
func (p Packed) EqualRange(i int, q Packed, j, n int) bool {
	if i < 0 || j < 0 || i+n > p.n || j+n > q.n {
		return false
	}
	for off := 0; off < n; off += 32 {
		span := n - off
		if span > 32 {
			span = 32
		}
		mask := ^uint64(0)
		if span < 32 {
			mask = (uint64(1) << (uint(span) * 2)) - 1
		}
		if (p.window(i+off)^q.window(j+off))&mask != 0 {
			return false
		}
	}
	// The N interval sets, shifted to range-relative coordinates, must
	// be identical.
	pc, qc := runCursor{runs: p.runs, start: i, n: n}, runCursor{runs: q.runs, start: j, n: n}
	for {
		ps, pn, pok := pc.next()
		qs, qn, qok := qc.next()
		if pok != qok || ps != qs || pn != qn {
			return false
		}
		if !pok {
			return true
		}
	}
}

// runCursor walks the N runs of one sequence clipped to [start,
// start+n), yielding range-relative intervals.
type runCursor struct {
	runs  []Run
	start int
	n     int
	idx   int
}

func (c *runCursor) next() (rs, rn int, ok bool) {
	for ; c.idx < len(c.runs); c.idx++ {
		r := c.runs[c.idx]
		lo, hi := int(r.Start), int(r.Start+r.Len)
		if hi <= c.start {
			continue
		}
		if lo >= c.start+c.n {
			return 0, 0, false
		}
		if lo < c.start {
			lo = c.start
		}
		if hi > c.start+c.n {
			hi = c.start + c.n
		}
		c.idx++
		return lo - c.start, hi - c.start, true
	}
	return 0, 0, false
}

const maxPos = int(^uint(0) >> 1)

// firstRunDiff returns the earliest position at which N membership
// differs between two canonical run lists, or maxPos if the sets are
// identical. Canonical lists (sorted, maximal) of equal sets are
// element-wise equal, so the first structural difference pins the
// position exactly.
func firstRunDiff(a, b []Run) int {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] == b[j] {
			i, j = i+1, j+1
			continue
		}
		if a[i].Start != b[j].Start {
			if a[i].Start < b[j].Start {
				return int(a[i].Start)
			}
			return int(b[j].Start)
		}
		// Same start, different length: membership diverges where the
		// shorter run ends.
		if a[i].Len < b[j].Len {
			return int(a[i].Start + a[i].Len)
		}
		return int(b[j].Start + b[j].Len)
	}
	if i < len(a) {
		return int(a[i].Start)
	}
	if j < len(b) {
		return int(b[j].Start)
	}
	return maxPos
}

// asciiRank orders a position the way ASCII bytes do: 'A' < 'C' < 'G'
// < 'N' < 'T'.
func asciiRank(code uint64, isN bool) int {
	if isN {
		return 3
	}
	if code == 3 { // T
		return 4
	}
	return int(code)
}

// Compare orders two packed sequences exactly as bytes.Compare orders
// their ASCII decodings: -1, 0, or +1. This is what lets packed weld
// pools reproduce sort.Strings order byte for byte.
func (p Packed) Compare(q Packed) int {
	minLen := p.n
	if q.n < minLen {
		minLen = q.n
	}
	// Earliest stored-code difference: scan aligned words; the lowest
	// set 2-bit group of the XOR is the earliest differing base.
	codeDiff := maxPos
	nw := (minLen + 31) / 32
	for i := 0; i < nw; i++ {
		if x := p.words[i] ^ q.words[i]; x != 0 {
			codeDiff = i*32 + bits.TrailingZeros64(x)/2
			break
		}
	}
	pos := codeDiff
	if nd := firstRunDiff(p.runs, q.runs); nd < pos {
		pos = nd
	}
	if pos >= minLen {
		switch {
		case p.n < q.n:
			return -1
		case p.n > q.n:
			return 1
		}
		return 0
	}
	pr := asciiRank(p.CodeAt(pos), p.IsN(pos))
	qr := asciiRank(q.CodeAt(pos), q.IsN(pos))
	switch {
	case pr < qr:
		return -1
	case pr > qr:
		return 1
	}
	return 0
}

// Equal reports whether p and q decode to identical ASCII sequences.
func (p Packed) Equal(q Packed) bool {
	return p.n == q.n && p.EqualRange(0, q, 0, p.n)
}

// MismatchRange counts positions in [0, n) where base i+off of p
// differs from base j+off of q under ASCII semantics, stopping early
// once the count reaches budget (pass n+1 or more for an exact count).
// It reports the mismatch count (clamped at budget) and the number of
// positions examined — the loop-iteration count of the equivalent
// byte-wise scan `for off := 0; off < n && mm < budget; off++`, which
// alignment work-unit accounting must reproduce exactly.
func (p Packed) MismatchRange(i int, q Packed, j, n, budget int) (mm, examined int) {
	if budget <= 0 {
		return 0, 0
	}
	for off := 0; off < n; off += 32 {
		span := n - off
		if span > 32 {
			span = 32
		}
		x := p.window(i+off) ^ q.window(j+off)
		if span < 32 {
			x &= (uint64(1) << (uint(span) * 2)) - 1
		}
		// Fold each differing 2-bit group down to its low bit.
		diff := (x | x>>1) & 0x5555555555555555
		// ASCII adjustment: where exactly one side is N and the other
		// stores code 0 (an 'A'), the words agree but the bases do
		// not. Both-N positions store equal codes and compare equal in
		// ASCII, so they need no correction. N runs are rare, so a
		// per-window scan over both sidecars stays cheap.
		diff |= nOnlyMask(p, i+off, q, j+off, span)
		diff |= nOnlyMask(q, j+off, p, i+off, span)
		c := bits.OnesCount64(diff)
		if mm+c >= budget {
			// Find the exact base where the budget-th mismatch lands,
			// to report the examined count the byte loop would.
			need := budget - mm
			for t := 0; t < 64; t += 2 {
				if diff>>uint(t)&1 == 1 {
					need--
					if need == 0 {
						return budget, off + t/2 + 1
					}
				}
			}
		}
		mm += c
	}
	return mm, n
}

// nOnlyMask marks (window-relative, low bit of each 2-bit group) the
// positions in [0, span) where a is N, b is not, and b stores code 0 —
// the only case the XOR of canonical words misses. as and bs are the
// absolute window starts in a and b.
func nOnlyMask(a Packed, as int, b Packed, bs, span int) uint64 {
	var mask uint64
	for _, r := range a.runs {
		lo, hi := int(r.Start), int(r.Start+r.Len)
		if hi <= as {
			continue
		}
		if lo >= as+span {
			break
		}
		if lo < as {
			lo = as
		}
		if hi > as+span {
			hi = as + span
		}
		for t := lo; t < hi; t++ {
			rel := t - as
			if bp := bs + rel; !b.IsN(bp) && b.CodeAt(bp) == 0 {
				mask |= uint64(1) << uint(rel*2)
			}
		}
	}
	return mask
}

// AppendEncode appends a canonical wire encoding of the sequence:
// uvarint base count, uvarint run count, each run as two uvarints,
// then the words little-endian. Equal sequences always produce equal
// bytes, so encodings can serve as map keys and travel through the
// string-framed weld exchange unchanged.
func (p Packed) AppendEncode(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(p.n))
	dst = binary.AppendUvarint(dst, uint64(len(p.runs)))
	for _, r := range p.runs {
		dst = binary.AppendUvarint(dst, uint64(r.Start))
		dst = binary.AppendUvarint(dst, uint64(r.Len))
	}
	for _, w := range p.words {
		dst = binary.LittleEndian.AppendUint64(dst, w)
	}
	return dst
}

// Encode returns the canonical wire encoding as new bytes.
func (p Packed) Encode() []byte { return p.AppendEncode(nil) }

// DecodePacked parses a wire encoding produced by Encode/AppendEncode
// and returns the sequence plus the number of bytes consumed.
func DecodePacked(b []byte) (Packed, int, error) {
	var p Packed
	n, sz := binary.Uvarint(b)
	if sz <= 0 || n > uint64(maxPos) {
		return p, 0, fmt.Errorf("seq: bad packed length")
	}
	off := sz
	nr, sz := binary.Uvarint(b[off:])
	if sz <= 0 {
		return p, 0, fmt.Errorf("seq: bad packed run count")
	}
	off += sz
	p.n = int(n)
	if nr > 0 {
		p.runs = make([]Run, nr)
		for i := range p.runs {
			s, sz := binary.Uvarint(b[off:])
			if sz <= 0 {
				return Packed{}, 0, fmt.Errorf("seq: bad packed run")
			}
			off += sz
			l, sz := binary.Uvarint(b[off:])
			if sz <= 0 {
				return Packed{}, 0, fmt.Errorf("seq: bad packed run")
			}
			off += sz
			p.runs[i] = Run{Start: int32(s), Len: int32(l)}
		}
	}
	nw := (p.n + 31) / 32
	if len(b) < off+8*nw {
		return Packed{}, 0, fmt.Errorf("seq: packed words truncated: need %d bytes, have %d", 8*nw, len(b)-off)
	}
	if nw > 0 {
		p.words = make([]uint64, nw)
		for i := range p.words {
			p.words[i] = binary.LittleEndian.Uint64(b[off:])
			off += 8
		}
	}
	return p, off, nil
}
