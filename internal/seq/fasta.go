package seq

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"strings"
)

// FastaReader streams records from FASTA input. It handles multi-line
// sequences and arbitrarily large files without loading them whole.
type FastaReader struct {
	br   *bufio.Reader
	next []byte // buffered header line beginning with '>'
	eof  bool
}

// NewFastaReader wraps r in a streaming FASTA parser.
func NewFastaReader(r io.Reader) *FastaReader {
	return &FastaReader{br: bufio.NewReaderSize(r, 1<<16)}
}

// Read returns the next record, or io.EOF when the input is exhausted.
func (fr *FastaReader) Read() (Record, error) {
	var rec Record
	header, err := fr.headerLine()
	if err != nil {
		return rec, err
	}
	if len(header) == 0 || header[0] != '>' {
		return rec, fmt.Errorf("seq: malformed FASTA header %q", truncate(header))
	}
	rec.ID, rec.Desc = splitHeader(header[1:])
	var body bytes.Buffer
	for {
		line, err := fr.line()
		if err == io.EOF {
			fr.eof = true
			break
		}
		if err != nil {
			return rec, err
		}
		if len(line) > 0 && line[0] == '>' {
			fr.next = line
			break
		}
		body.Write(line)
	}
	rec.Seq = Upper(body.Bytes())
	return rec, nil
}

// ReadAll drains the reader into a slice of records.
func (fr *FastaReader) ReadAll() ([]Record, error) {
	var recs []Record
	for {
		rec, err := fr.Read()
		if err == io.EOF {
			return recs, nil
		}
		if err != nil {
			return recs, err
		}
		recs = append(recs, rec)
	}
}

func (fr *FastaReader) headerLine() ([]byte, error) {
	if fr.next != nil {
		h := fr.next
		fr.next = nil
		return h, nil
	}
	if fr.eof {
		return nil, io.EOF
	}
	for {
		line, err := fr.line()
		if err != nil {
			return nil, err
		}
		if len(line) == 0 {
			continue // skip blank lines between records
		}
		return line, nil
	}
}

// line reads one trimmed line; it returns io.EOF only when no bytes
// remain at all.
func (fr *FastaReader) line() ([]byte, error) {
	raw, err := fr.br.ReadBytes('\n')
	if len(raw) == 0 && err != nil {
		return nil, io.EOF
	}
	raw = bytes.TrimRight(raw, "\r\n")
	out := make([]byte, len(raw))
	copy(out, raw)
	if err != nil && err != io.EOF {
		return nil, err
	}
	return out, nil
}

func splitHeader(h []byte) (id, desc string) {
	s := strings.TrimSpace(string(h))
	if i := strings.IndexByte(s, ' '); i >= 0 {
		return s[:i], strings.TrimSpace(s[i+1:])
	}
	return s, ""
}

func truncate(b []byte) string {
	const max = 40
	if len(b) > max {
		return string(b[:max]) + "..."
	}
	return string(b)
}

// FastaWriter writes records in FASTA format with fixed line wrapping.
type FastaWriter struct {
	bw   *bufio.Writer
	Wrap int // bases per line; <=0 means no wrapping
}

// NewFastaWriter returns a writer that wraps sequence lines at 70 bases.
func NewFastaWriter(w io.Writer) *FastaWriter {
	return &FastaWriter{bw: bufio.NewWriterSize(w, 1<<16), Wrap: 70}
}

// Write emits one record.
func (fw *FastaWriter) Write(rec *Record) error {
	if _, err := fw.bw.WriteString(">"); err != nil {
		return err
	}
	if _, err := fw.bw.WriteString(rec.ID); err != nil {
		return err
	}
	if rec.Desc != "" {
		if _, err := fw.bw.WriteString(" " + rec.Desc); err != nil {
			return err
		}
	}
	if err := fw.bw.WriteByte('\n'); err != nil {
		return err
	}
	s := rec.Seq
	if fw.Wrap <= 0 {
		if _, err := fw.bw.Write(s); err != nil {
			return err
		}
		return fw.bw.WriteByte('\n')
	}
	for len(s) > 0 {
		n := fw.Wrap
		if n > len(s) {
			n = len(s)
		}
		if _, err := fw.bw.Write(s[:n]); err != nil {
			return err
		}
		if err := fw.bw.WriteByte('\n'); err != nil {
			return err
		}
		s = s[n:]
	}
	return nil
}

// Flush commits buffered output.
func (fw *FastaWriter) Flush() error { return fw.bw.Flush() }

// ReadFastaFile loads every record of a FASTA file into memory.
func ReadFastaFile(path string) ([]Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return NewFastaReader(f).ReadAll()
}

// WriteFastaFile writes records to path, creating or truncating it.
func WriteFastaFile(path string, recs []Record) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	fw := NewFastaWriter(f)
	for i := range recs {
		if err := fw.Write(&recs[i]); err != nil {
			f.Close()
			return err
		}
	}
	if err := fw.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
