// Validation: reproduce the paper's §IV methodology on a whitefly-like
// dataset — repeated runs of the original and hybrid-parallel Trinity,
// all-to-all Smith-Waterman comparison of their transcript sets, and a
// two-sample t-test showing no significant difference (paper Fig. 4).
//
//	go run ./examples/validation
package main

import (
	"fmt"
	"log"
	"os"

	trinity "gotrinity"

	"gotrinity/internal/experiments"
)

func main() {
	log.SetFlags(0)

	lab := trinity.NewLab(0.5)
	lab.Log = os.Stderr

	res, err := trinity.Fig4(lab, 6)
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderFig4(os.Stdout, res)

	if res.TTest.P >= 0.05 {
		fmt.Println("\nconclusion: hybrid MPI+OpenMP output is statistically indistinguishable")
		fmt.Println("from the original's run-to-run variation, as the paper found.")
	} else {
		fmt.Println("\nconclusion: the two versions differ significantly — investigate!")
	}
}
