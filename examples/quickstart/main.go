// Quickstart: generate a small synthetic RNA-seq dataset, assemble it
// end to end with the default single-node pipeline, and check how many
// reference transcripts were recovered.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gotrinity/internal/sw"

	trinity "gotrinity"
)

func main() {
	log.SetFlags(0)

	// A tiny transcriptome: 12 genes with up to 2 isoforms each,
	// sequenced to assembly-grade depth with error-bearing 50 bp reads.
	profile := trinity.TinyProfile(42)
	profile.Reads = 4000
	dataset := trinity.GenerateDataset(profile)
	fmt.Printf("dataset: %d reads from %d reference isoforms\n",
		len(dataset.Reads), len(dataset.Reference))

	// Assemble. The zero-ish config runs the original OpenMP-only
	// pipeline on one node.
	result, err := trinity.Assemble(dataset.Reads, trinity.Config{K: 21, ThreadsPerRank: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pipeline: %d contigs -> %d components -> %d transcripts\n",
		len(result.Contigs), len(result.GFF.Components), len(result.Transcripts))

	// How many reference isoforms were reconstructed at full length?
	recovered := 0
	for _, ref := range dataset.Reference {
		for _, tr := range result.Transcripts {
			full, ident := sw.FullLengthIdentity(ref.Seq, tr.Seq, sw.DefaultScoring(), 0.9)
			if full && ident >= 0.95 {
				recovered++
				break
			}
		}
	}
	fmt.Printf("recovered %d/%d reference isoforms at >=90%% length, >=95%% identity\n",
		recovered, len(dataset.Reference))

	// The same run with the streaming pipeline tail: Bowtie →
	// Butterfly execute as a DAG of bounded channels whose stages
	// overlap in wall time. Output is byte-identical to the barrier
	// run above — the determinism battery in the tests pins this.
	streamed, err := trinity.Assemble(dataset.Reads, trinity.Config{
		K: 21, ThreadsPerRank: 4,
		Streaming: trinity.StreamingConfig{Enabled: true},
	})
	if err != nil {
		log.Fatal(err)
	}
	same := len(streamed.Transcripts) == len(result.Transcripts)
	for i := 0; same && i < len(result.Transcripts); i++ {
		same = streamed.Transcripts[i].ID == result.Transcripts[i].ID &&
			string(streamed.Transcripts[i].Seq) == string(result.Transcripts[i].Seq)
	}
	fmt.Printf("streaming tail: %d transcripts, byte-identical to barrier run: %v\n",
		len(streamed.Transcripts), same)

	// Stage trace, Collectl style.
	fmt.Println("\nmeasured stage trace:")
	if err := result.Trace.Render(logWriter{}); err != nil {
		log.Fatal(err)
	}
}

// logWriter adapts fmt printing to the trace renderer.
type logWriter struct{}

func (logWriter) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}
