// Distributed: run the hybrid MPI+OpenMP Chrysalis on a virtual Blue
// Wonder cluster and print the GraphFromFasta / ReadsToTranscripts
// scaling series the paper reports in Figs. 7-9, at a reduced dataset
// scale so it completes in about a minute.
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"
	"os"

	trinity "gotrinity"

	"gotrinity/internal/experiments"
)

func main() {
	log.SetFlags(0)

	lab := trinity.NewLab(0.25) // quarter-scale sugarbeet
	lab.Log = os.Stderr

	fmt.Println("== GraphFromFasta: hybrid MPI+OpenMP scaling (paper Fig. 7/8) ==")
	gff, err := trinity.Fig7(lab, []int{16, 32, 64, 128, 192})
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderFig7(os.Stdout, gff)
	fmt.Println()
	experiments.RenderFig8(os.Stdout, gff)

	fmt.Println("\n== ReadsToTranscripts scaling (paper Fig. 9) ==")
	r2t, err := trinity.Fig9(lab, []int{4, 8, 16, 32})
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderFig9(os.Stdout, r2t)

	fmt.Println("\n== Distributed Bowtie via PyFasta (paper Fig. 10) ==")
	bow, err := trinity.Fig10(lab, []int{1, 16, 64, 128})
	if err != nil {
		log.Fatal(err)
	}
	experiments.RenderFig10(os.Stdout, bow)
}
