// Diffexpr: the full downstream workflow the paper's §II-A sketches —
// assemble a transcriptome de novo, then quantify two conditions
// against it and test for differential expression. The second
// condition is simulated with a handful of genes genuinely up- or
// down-regulated, so the test's hits can be checked against ground
// truth.
//
//	go run ./examples/diffexpr
package main

import (
	"fmt"
	"log"

	trinity "gotrinity"

	"gotrinity/internal/diffexpr"
	"gotrinity/internal/express"
	"gotrinity/internal/rnaseq"
	"gotrinity/internal/sw"
)

func main() {
	log.SetFlags(0)

	// Condition A: the base transcriptome.
	p := trinity.TinyProfile(31)
	p.Reads = 5000
	p.MaxIsoforms = 1
	condA := trinity.GenerateDataset(p)

	// Condition B: same transcriptome, three genes shifted 8x.
	pb := p
	pb.Seed = 31 // same genome
	condB := rnaseq.Generate(pb)
	regulated := map[int]float64{0: 8, 1: 0.125, 2: 8}
	for g, fold := range regulated {
		condB.Expression[g] *= fold
	}
	// Regenerate B's reads under the shifted expression.
	condB = resampleWithExpression(pb, condB.Expression)

	// Assemble condition A de novo.
	result, err := trinity.Assemble(condA.Reads, trinity.Config{K: 21, ThreadsPerRank: 4})
	if err != nil {
		log.Fatal(err)
	}
	transcripts := result.TranscriptRecords()
	fmt.Printf("assembled %d transcripts from %d reads\n", len(transcripts), len(condA.Reads))

	// Quantify both conditions against the assembled transcripts.
	qa, err := express.Quantify(transcripts, condA.Reads, express.Options{})
	if err != nil {
		log.Fatal(err)
	}
	qb, err := express.Quantify(transcripts, condB.Reads, express.Options{})
	if err != nil {
		log.Fatal(err)
	}

	names := make([]string, len(transcripts))
	ca := make([]float64, len(transcripts))
	cb := make([]float64, len(transcripts))
	for i := range transcripts {
		names[i] = transcripts[i].ID
		ca[i] = qa.Abundances[i].ExpectedHits
		cb[i] = qb.Abundances[i].ExpectedHits
	}
	results, err := diffexpr.Test(names,
		diffexpr.Sample{Name: "A", Counts: ca},
		diffexpr.Sample{Name: "B", Counts: cb},
		diffexpr.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Which assembled transcripts belong to the regulated genes?
	isRegulated := func(ti int) (int, bool) {
		for _, ref := range condA.Reference {
			if _, ok := regulated[ref.Gene]; !ok {
				continue
			}
			if full, id := sw.FullLengthIdentity(ref.Seq, transcripts[ti].Seq, sw.DefaultScoring(), 0.8); full && id > 0.9 {
				return ref.Gene, true
			}
		}
		return 0, false
	}

	fmt.Printf("\n%-16s %10s %10s %8s %10s %6s %s\n", "transcript", "A", "B", "log2FC", "q", "sig", "truth")
	hits, truePos := 0, 0
	for i, r := range diffexpr.TopTable(results) {
		gene, reg := isRegulated(indexOf(names, r.Transcript))
		truth := ""
		if reg {
			truth = fmt.Sprintf("gene%d x%g", gene, regulated[gene])
		}
		if r.Significant {
			hits++
			if reg {
				truePos++
			}
		}
		if i < 10 {
			sig := ""
			if r.Significant {
				sig = "*"
			}
			fmt.Printf("%-16s %10.1f %10.1f %8.2f %10.2e %6s %s\n",
				r.Transcript, r.CountA, r.CountB, r.Log2FC, r.Q, sig, truth)
		}
	}
	fmt.Printf("\nsignificant transcripts: %d (%d matching truly regulated genes)\n", hits, truePos)
}

func indexOf(names []string, name string) int {
	for i, n := range names {
		if n == name {
			return i
		}
	}
	return -1
}

// resampleWithExpression regenerates a dataset's reads under modified
// expression by rebuilding with the same seed and overriding the
// expression vector before sampling.
func resampleWithExpression(p rnaseq.Profile, expr []float64) *rnaseq.Dataset {
	d := rnaseq.GenerateWithExpression(p, expr)
	return d
}
