// Fault tolerance: assemble the same dataset three times — fault-free,
// with a rank killed mid-Chrysalis, and with a straggling rank evicted
// by the timeout policy — and show that the recovered runs produce
// byte-identical transcripts.
//
//	go run ./examples/faulttolerance
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"gotrinity/internal/seq"

	trinity "gotrinity"
)

func main() {
	log.SetFlags(0)

	profile := trinity.TinyProfile(42)
	profile.Reads = 4000
	dataset := trinity.GenerateDataset(profile)
	fmt.Printf("dataset: %d reads, assembling with 4 MPI ranks\n", len(dataset.Reads))

	base := trinity.Config{K: 21, ThreadsPerRank: 4, Ranks: 4, Seed: 1}

	// Run 1: fault-free baseline.
	baseline := mustAssemble(dataset.Reads, base)
	fmt.Printf("baseline: %d transcripts\n", countTranscripts(baseline))

	// Run 2: kill rank 1 five fault points into GraphFromFasta. A fault
	// plan implies the recovery layer: the survivors agree on the dead
	// set, reassign the dead rank's unfinished chunks among themselves,
	// recompute them from the chunk checkpoints, and continue.
	killed := base
	killed.FaultSpec = "kill:rank=1,call=5"
	withKill := mustAssemble(dataset.Reads, killed)
	report("after killing rank 1", withKill, baseline)

	// Run 3: rank 2 turns into a straggler (500 ms stall); the eviction
	// policy removes any rank that keeps a collective waiting more than
	// 50 ms, then recovery reassigns its chunks exactly as for a death.
	straggler := base
	straggler.FaultSpec = "slow:rank=2,call=0,delay=500ms"
	straggler.RankTimeout = 50 * time.Millisecond
	withStraggler := mustAssemble(dataset.Reads, straggler)
	report("after evicting straggler rank 2", withStraggler, baseline)
}

func mustAssemble(reads []trinity.Read, cfg trinity.Config) *trinity.Result {
	res, err := trinity.Assemble(reads, cfg)
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func countTranscripts(r *trinity.Result) int { return len(r.Transcripts) }

// report prints what the fault layer did and verifies byte identity of
// the transcript FASTA against the fault-free baseline.
func report(what string, got, want *trinity.Result) {
	if got.Faults != nil {
		for _, f := range got.Faults.Injected {
			fmt.Printf("%s: fault fired: %v\n", what, f)
		}
		if rep := got.Faults.GFF; rep != nil && rep.Rounds > 0 {
			fmt.Printf("  graphfromfasta: %d recovery round(s), dead ranks %v, %d chunk(s) recomputed\n",
				rep.Rounds, rep.DeadRanks, len(rep.ReassignedChunks))
		}
		if rep := got.Faults.R2T; rep != nil && rep.Rounds > 0 {
			fmt.Printf("  readstotranscripts: %d recovery round(s), dead ranks %v, %d chunk(s) recomputed\n",
				rep.Rounds, rep.DeadRanks, len(rep.ReassignedChunks))
		}
	}
	if bytes.Equal(fasta(got), fasta(want)) {
		fmt.Printf("  transcripts byte-identical to the fault-free run ✓\n")
	} else {
		log.Fatalf("%s: transcripts differ from the fault-free run", what)
	}
}

func fasta(r *trinity.Result) []byte {
	var buf bytes.Buffer
	fw := seq.NewFastaWriter(&buf)
	recs := r.TranscriptRecords()
	for i := range recs {
		if err := fw.Write(&recs[i]); err != nil {
			log.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		log.Fatal(err)
	}
	return buf.Bytes()
}
