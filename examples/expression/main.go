// Expression: quantify gene expression two ways — the paper's direct
// measure ("the number of reads which map to a given gene or isoform
// is a direct measure of the expression level", §I) via the
// ReadsToTranscripts assignments, and an RSEM-style EM over the
// reconstructed transcripts — and compare both against the
// generator's ground truth.
//
//	go run ./examples/expression
package main

import (
	"fmt"
	"log"
	"sort"

	trinity "gotrinity"

	"gotrinity/internal/express"
	"gotrinity/internal/sw"
)

func main() {
	log.SetFlags(0)

	p := trinity.TinyProfile(7)
	p.Reads = 6000
	p.ExpressionSigma = 1.5
	dataset := trinity.GenerateDataset(p)

	result, err := trinity.Assemble(dataset.Reads, trinity.Config{K: 21, ThreadsPerRank: 4, Ranks: 4})
	if err != nil {
		log.Fatal(err)
	}

	// Reads per component.
	readsPerComp := map[int]int{}
	for _, a := range result.R2T.Assignments {
		readsPerComp[int(a.Component)]++
	}

	// Map each component to a ground-truth gene via its longest
	// transcript's best reference match.
	compGene := map[int]int{}
	for _, tr := range result.Transcripts {
		if _, done := compGene[tr.Component]; done {
			continue
		}
		for _, ref := range dataset.Reference {
			if full, id := sw.FullLengthIdentity(ref.Seq, tr.Seq, sw.DefaultScoring(), 0.8); full && id > 0.9 {
				compGene[tr.Component] = ref.Gene
				break
			}
		}
	}

	type row struct {
		comp, gene, reads int
		trueExpr          float64
	}
	var rows []row
	for comp, n := range readsPerComp {
		if gene, ok := compGene[comp]; ok {
			rows = append(rows, row{comp, gene, n, dataset.Expression[gene]})
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].reads > rows[j].reads })

	fmt.Printf("%-10s %-6s %-12s %-14s\n", "component", "gene", "reads", "true expr")
	top := rows
	if len(top) > 12 {
		top = top[:12]
	}
	for _, r := range top {
		fmt.Printf("%-10d %-6d %-12d %-14.2f\n", r.comp, r.gene, r.reads, r.trueExpr)
	}

	// RSEM-style EM quantification over the reconstructed transcripts.
	em, err := express.Quantify(result.TranscriptRecords(), dataset.Reads, express.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nEM quantifier: %d/%d reads assigned in %d iterations; top transcripts by reads:\n",
		em.Assigned, len(dataset.Reads), em.Iterations)
	byReads := append([]express.Abundance(nil), em.Abundances...)
	sort.Slice(byReads, func(i, j int) bool { return byReads[i].ExpectedHits > byReads[j].ExpectedHits })
	for i, a := range byReads {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-14s len=%-5d reads=%-8.1f TPM=%.0f\n", a.Transcript, a.Length, a.ExpectedHits, a.TPM)
	}

	// Rank correlation between assigned reads and true expression.
	if len(rows) >= 3 {
		reads := make([]float64, len(rows))
		expr := make([]float64, len(rows))
		for i, r := range rows {
			reads[i] = float64(r.reads)
			expr[i] = r.trueExpr
		}
		fmt.Printf("\nSpearman rank correlation (reads vs true expression): %.2f\n",
			spearman(reads, expr))
	}
}

// spearman computes the Spearman rank correlation of two equal-length
// series (no tie correction — ties are rare here).
func spearman(a, b []float64) float64 {
	n := len(a)
	ra := ranks(a)
	rb := ranks(b)
	var d2 float64
	for i := 0; i < n; i++ {
		d := ra[i] - rb[i]
		d2 += d * d
	}
	return 1 - 6*d2/float64(n*(n*n-1))
}

func ranks(xs []float64) []float64 {
	idx := make([]int, len(xs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	out := make([]float64, len(xs))
	for rank, i := range idx {
		out[i] = float64(rank)
	}
	return out
}
