package trinity

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"gotrinity/internal/trace"
)

// Golden determinism battery for the trace layer: the virtual-time
// exports (Chrome trace and metrics) are deterministic functions of
// the dataset, seed and rank count, so repeated runs must produce
// byte-identical files. Real wall-clock data is excluded from these
// exports by design — that is what makes the guarantee possible.

// traceExports runs the pipeline with a fresh recorder and returns the
// virtual Chrome trace and metrics exports.
func traceExports(t *testing.T, reads []Read, cfg Config) (chrome, metrics []byte) {
	t.Helper()
	rec := NewTraceRecorder(cfg.Ranks)
	cfg.Trace = rec
	if _, err := Assemble(reads, cfg); err != nil {
		t.Fatal(err)
	}
	var cb, mb bytes.Buffer
	if err := rec.WriteChrome(&cb, trace.ChromeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := rec.WriteMetrics(&mb, trace.MetricsOptions{}); err != nil {
		t.Fatal(err)
	}
	return cb.Bytes(), mb.Bytes()
}

// TestGoldenTraceDeterministic: for a fixed seed and every rank count,
// repeated runs export byte-identical virtual traces and metrics.
func TestGoldenTraceDeterministic(t *testing.T) {
	d := GenerateDataset(TinyProfile(7))
	for _, ranks := range []int{1, 2, 4} {
		chrome1, metrics1 := traceExports(t, d.Reads, goldenConfig(ranks))
		chrome2, metrics2 := traceExports(t, d.Reads, goldenConfig(ranks))
		if !bytes.Equal(chrome1, chrome2) {
			t.Errorf("ranks=%d: Chrome trace differs between runs (%d vs %d bytes)",
				ranks, len(chrome1), len(chrome2))
		}
		if !bytes.Equal(metrics1, metrics2) {
			t.Errorf("ranks=%d: metrics differ between runs:\n%s\n---\n%s",
				ranks, metrics1, metrics2)
		}
	}
}

// TestGoldenTraceContent: the trace of a 4-rank run is valid Chrome
// trace-event JSON containing per-rank spans for both hybrid Chrysalis
// stages, and the metrics carry the MPI traffic counters.
func TestGoldenTraceContent(t *testing.T) {
	d := GenerateDataset(TinyProfile(7))
	chrome, metrics := traceExports(t, d.Reads, goldenConfig(4))

	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Pid  int     `json:"pid"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome, &doc); err != nil {
		t.Fatalf("invalid Chrome trace JSON: %v", err)
	}
	ranksSeen := map[string]map[int]bool{"graphfromfasta": {}, "readstotranscripts": {}}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ranksSeen[ev.Cat] != nil {
			ranksSeen[ev.Cat][ev.Pid] = true
		}
	}
	for cat, ranks := range ranksSeen {
		if len(ranks) != 4 {
			t.Errorf("%s spans cover %d ranks, want 4", cat, len(ranks))
		}
	}
	for _, want := range []string{
		"mpi_collectives_total",
		"mpi_collective_bytes",
		"trace_virtual_seconds_total{cat=\"graphfromfasta\"}",
		"trace_virtual_seconds_total{cat=\"readstotranscripts\"}",
		"r2t_chunk_units_bucket",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestGoldenTraceFaultedRun is the acceptance criterion: a run with an
// injected rank kill must record at least one fault event and at least
// one recovery event, and the faulted run's virtual trace must still
// be reproducible run to run.
func TestGoldenTraceFaultedRun(t *testing.T) {
	d := GenerateDataset(TinyProfile(7))
	run := func() (*TraceRecorder, []byte) {
		cfg := goldenConfig(4)
		cfg.FaultSpec = "kill:rank=1,call=2"
		rec := NewTraceRecorder(cfg.Ranks)
		cfg.Trace = rec
		if _, err := Assemble(d.Reads, cfg); err != nil {
			t.Fatal(err)
		}
		var cb bytes.Buffer
		if err := rec.WriteChrome(&cb, trace.ChromeOptions{}); err != nil {
			t.Fatal(err)
		}
		return rec, cb.Bytes()
	}
	rec, chrome1 := run()

	var faults, recoveries int
	for _, ev := range rec.Events() {
		switch ev.Cat {
		case "fault":
			faults++
		case "recovery":
			recoveries++
		}
	}
	if faults == 0 {
		t.Error("no fault event recorded for a run with an injected kill")
	}
	if recoveries == 0 {
		t.Error("no recovery event recorded for a recovered run")
	}
	counts := rec.Counts()
	if counts["faults_total:kind=rank_death"] == 0 {
		t.Errorf("fault counters empty: %v", counts)
	}

	if _, chrome2 := run(); !bytes.Equal(chrome1, chrome2) {
		t.Error("faulted run's virtual trace differs between runs")
	}
}
