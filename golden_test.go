package trinity

import (
	"bytes"
	"testing"

	"gotrinity/internal/seq"
)

// Golden end-to-end determinism battery. The pipeline's contract is
// byte determinism of the transcript FASTA: for a fixed dataset seed
// the output must be identical across repeated runs, across hybrid
// rank counts, and across fault-injected runs that recover — the three
// invariants the fault-tolerance layer must not break.

// goldenFasta renders a run's transcripts exactly as `trinity --out`
// writes them.
func goldenFasta(t *testing.T, reads []Read, cfg Config) []byte {
	t.Helper()
	res, err := Assemble(reads, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	fw := seq.NewFastaWriter(&buf)
	recs := res.TranscriptRecords()
	for i := range recs {
		if err := fw.Write(&recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := fw.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty transcript FASTA")
	}
	return buf.Bytes()
}

func goldenConfig(ranks int) Config {
	return Config{K: 21, ThreadsPerRank: 2, Ranks: ranks, Seed: 1}
}

// TestGoldenRepeatedRunsIdentical: same seed, same config — the
// transcript FASTA must not vary run to run (no map-order or
// goroutine-schedule leakage).
func TestGoldenRepeatedRunsIdentical(t *testing.T) {
	d := GenerateDataset(TinyProfile(7))
	want := goldenFasta(t, d.Reads, goldenConfig(4))
	for run := 1; run <= 2; run++ {
		if got := goldenFasta(t, d.Reads, goldenConfig(4)); !bytes.Equal(got, want) {
			t.Fatalf("run %d produced different transcript FASTA (%d vs %d bytes)", run, len(got), len(want))
		}
	}
}

// TestGoldenRankCountsIdentical: the hybrid decomposition must be
// invisible in the output — Ranks 1, 2 and 4 produce byte-identical
// transcripts.
func TestGoldenRankCountsIdentical(t *testing.T) {
	d := GenerateDataset(TinyProfile(7))
	want := goldenFasta(t, d.Reads, goldenConfig(1))
	for _, ranks := range []int{2, 4} {
		if got := goldenFasta(t, d.Reads, goldenConfig(ranks)); !bytes.Equal(got, want) {
			t.Fatalf("ranks=%d produced different transcript FASTA (%d vs %d bytes)", ranks, len(got), len(want))
		}
	}
}

// TestGoldenFaultedRunMatchesFaultFree is the pipeline-level acceptance
// criterion: a seeded fault plan that kills one of 4 ranks during the
// hybrid Chrysalis must still yield transcripts byte-identical to the
// fault-free run.
func TestGoldenFaultedRunMatchesFaultFree(t *testing.T) {
	d := GenerateDataset(TinyProfile(7))
	want := goldenFasta(t, d.Reads, goldenConfig(4))
	for seed := int64(1); seed <= 3; seed++ {
		cfg := goldenConfig(4)
		cfg.FaultSeed = seed
		res, err := Assemble(d.Reads, cfg)
		if err != nil {
			t.Fatalf("fault seed %d: %v", seed, err)
		}
		if res.Faults == nil || len(res.Faults.Injected) == 0 {
			t.Fatalf("fault seed %d: no fault fired (planned %v)", seed, res.Faults)
		}
		if got := goldenFasta(t, d.Reads, cfg); !bytes.Equal(got, want) {
			t.Fatalf("fault seed %d: recovered transcripts differ from fault-free run", seed)
		}
	}
}

// TestGoldenRecoveryLayerInert: merely enabling the checkpoint/recovery
// layer (no faults) must not change the output either.
func TestGoldenRecoveryLayerInert(t *testing.T) {
	d := GenerateDataset(TinyProfile(7))
	want := goldenFasta(t, d.Reads, goldenConfig(4))
	cfg := goldenConfig(4)
	cfg.Recover = true
	if got := goldenFasta(t, d.Reads, cfg); !bytes.Equal(got, want) {
		t.Fatal("recovery-enabled run differs from baseline")
	}
}

// TestGoldenStreamingMatchesBarrier: the streaming channel-DAG tail is
// a pure execution-order change — for every worker count and buffer
// depth its transcript FASTA is byte-identical to the barrier-stepped
// run's.
func TestGoldenStreamingMatchesBarrier(t *testing.T) {
	d := GenerateDataset(TinyProfile(7))
	want := goldenFasta(t, d.Reads, goldenConfig(4))
	for _, wd := range [][2]int{{1, 1}, {4, 8}, {8, 64}} {
		cfg := goldenConfig(4)
		cfg.TailWorkers = wd[0]
		cfg.Streaming.Enabled = true
		cfg.Streaming.BufferDepth = wd[1]
		if got := goldenFasta(t, d.Reads, cfg); !bytes.Equal(got, want) {
			t.Fatalf("streaming workers=%d depth=%d produced different transcript FASTA", wd[0], wd[1])
		}
	}
}

// TestGoldenStreamingFaultedMatchesFaultFree: seeded fault plans and
// the streaming DAG compose — a rank killed mid-Chrysalis while stages
// overlap still recovers to the fault-free barrier output.
func TestGoldenStreamingFaultedMatchesFaultFree(t *testing.T) {
	d := GenerateDataset(TinyProfile(7))
	want := goldenFasta(t, d.Reads, goldenConfig(4))
	for seed := int64(1); seed <= 3; seed++ {
		cfg := goldenConfig(4)
		cfg.FaultSeed = seed
		cfg.Streaming.Enabled = true
		cfg.TailWorkers = 4
		if got := goldenFasta(t, d.Reads, cfg); !bytes.Equal(got, want) {
			t.Fatalf("fault seed %d: streaming recovered transcripts differ from fault-free barrier run", seed)
		}
	}
}
