# Build and verification entry points. `make verify` is the full
# pre-merge battery: it includes the race detector because the hybrid
# Chrysalis runs ranks as goroutines and the fault-tolerance layer
# adds shared checkpoint stores — a data race there is a correctness
# bug, not a style issue.

GO ?= go

.PHONY: build test race fuzz bench verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every fuzz target (seed corpora always run as
# part of `make test`; this shakes the generators for a few seconds
# each).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadComponents -fuzztime 10s ./internal/chrysalis/
	$(GO) test -run '^$$' -fuzz FuzzReadAssignments -fuzztime 10s ./internal/chrysalis/
	$(GO) test -run '^$$' -fuzz FuzzChrysalisDegenerateInput -fuzztime 10s ./internal/chrysalis/
	$(GO) test -run '^$$' -fuzz FuzzReadSAM -fuzztime 10s ./internal/bowtie/
	$(GO) test -run '^$$' -fuzz FuzzAlignDegenerateReads -fuzztime 10s ./internal/bowtie/

bench:
	$(GO) test -bench=. -benchmem .

verify: build
	$(GO) vet ./...
	$(GO) test -race ./...

clean:
	rm -rf bin
