# Build and verification entry points. `make verify` is the full
# pre-merge battery: it includes the race detector because the hybrid
# Chrysalis runs ranks as goroutines and the fault-tolerance layer
# adds shared checkpoint stores — a data race there is a correctness
# bug, not a style issue.

GO ?= go

.PHONY: build test race fuzz bench bench-chrysalis bench-kernels bench-pipeline bench-shard bench-seq bench-fm lint-ascii verify clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz pass over every fuzz target (seed corpora always run as
# part of `make test`; this shakes the generators for a few seconds
# each).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzReadComponents -fuzztime 10s ./internal/chrysalis/
	$(GO) test -run '^$$' -fuzz FuzzReadAssignments -fuzztime 10s ./internal/chrysalis/
	$(GO) test -run '^$$' -fuzz FuzzChrysalisDegenerateInput -fuzztime 10s ./internal/chrysalis/
	$(GO) test -run '^$$' -fuzz FuzzReadSAM -fuzztime 10s ./internal/bowtie/
	$(GO) test -run '^$$' -fuzz FuzzAlignDegenerateReads -fuzztime 10s ./internal/bowtie/
	$(GO) test -run '^$$' -fuzz FuzzFlatSet -fuzztime 10s ./internal/kmer/
	$(GO) test -run '^$$' -fuzz FuzzStreamingMerge -fuzztime 10s ./internal/core/
	$(GO) test -run '^$$' -fuzz FuzzPackedBackwardSearch -fuzztime 10s ./internal/fm/

bench:
	$(GO) test -bench=. -benchmem .

# Chrysalis overhead snapshot: the fault-layer and trace-recorder
# benchmarks, recorded as BENCH_chrysalis.json so overhead regressions
# show up in review diffs. The awk pass converts `go test -bench`
# lines ("BenchmarkName-8  N  v unit  v unit ...") into one JSON
# object per benchmark.
BENCH_JSON ?= BENCH_chrysalis.json
bench-chrysalis:
	$(GO) test -run '^$$' -bench 'Chrysalis(WithFaultLayer|TraceRecorder)' -benchtime 3x . \
	| awk 'BEGIN { printf("{\n") } \
	       /^Benchmark/ { if (n++) printf(",\n"); \
	         printf("  \"%s\": {\"iterations\": %s", $$1, $$2); \
	         for (i = 3; i < NF; i += 2) printf(", \"%s\": %s", $$(i+1), $$i); \
	         printf("}") } \
	       END { printf("\n}\n") }' > $(BENCH_JSON)
	@cat $(BENCH_JSON)

# Hot-path kernel snapshot: each flat/frozen kernel benchmarked
# against the map-based reference it replaced, recorded as
# BENCH_kernels.json so the speedups (and any regressions) show up in
# review diffs. Same awk JSON conversion as bench-chrysalis.
KERNEL_BENCH = HarvestWelds|ScanContigForWelds|BuildContigKmerIndex|AssignRead|CountTableGet
BENCH_KERNELS_JSON ?= BENCH_kernels.json
bench-kernels:
	{ $(GO) test -run '^$$' -bench 'Benchmark(HarvestWelds|ScanContigForWelds|BuildContigKmerIndex|AssignRead)' -benchmem -benchtime 1s ./internal/chrysalis/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkCountTableGet' -benchmem -benchtime 1s ./internal/jellyfish/ ; } \
	| awk 'BEGIN { printf("{\n") } \
	       /^Benchmark/ { if (n++) printf(",\n"); \
	         printf("  \"%s\": {\"iterations\": %s", $$1, $$2); \
	         for (i = 3; i < NF; i += 2) printf(", \"%s\": %s", $$(i+1), $$i); \
	         printf("}") } \
	       END { printf("\n}\n") }' > $(BENCH_KERNELS_JSON)
	@cat $(BENCH_KERNELS_JSON)

# Pipeline-tail snapshot: the serial-vs-parallel tail sweep plus the
# streaming-vs-barrier DAG sweep, recorded as BENCH_pipeline.json
# (wall tail seconds plus the deterministic LPT makespan models — see
# DESIGN.md #9 and #10) so tail-scaling regressions show up in review
# diffs. Same awk JSON conversion as bench-chrysalis.
BENCH_PIPELINE_JSON ?= BENCH_pipeline.json
bench-pipeline:
	$(GO) test -run '^$$' -bench 'BenchmarkPipeline(Tail|Streaming)' -benchtime 3x -timeout 30m . \
	| awk 'BEGIN { printf("{\n") } \
	       /^Benchmark/ { if (n++) printf(",\n"); \
	         printf("  \"%s\": {\"iterations\": %s", $$1, $$2); \
	         for (i = 3; i < NF; i += 2) printf(", \"%s\": %s", $$(i+1), $$i); \
	         printf("}") } \
	       END { printf("\n}\n") }' > $(BENCH_PIPELINE_JSON)
	@cat $(BENCH_PIPELINE_JSON)

# Sharded k-mer state snapshot: per-rank resident bytes, lookup
# exchange bytes and the overlapped tile pipeline's hidden-fetch
# fraction for the replicated vs ShardKmers GraphFromFasta and
# ReadsToTranscripts at ranks {1,4,16}, recorded as BENCH_shard.json
# so the memory-vs-bytes trade shows up in review diffs. Same awk JSON
# conversion as bench-chrysalis.
BENCH_SHARD_JSON ?= BENCH_shard.json
bench-shard:
	$(GO) test -run '^$$' -bench 'BenchmarkShardScaling' -benchtime 3x -timeout 30m . \
	| awk 'BEGIN { printf("{\n") } \
	       /^Benchmark/ { if (n++) printf(",\n"); \
	         printf("  \"%s\": {\"iterations\": %s", $$1, $$2); \
	         for (i = 3; i < NF; i += 2) printf(", \"%s\": %s", $$(i+1), $$i); \
	         printf("}") } \
	       END { printf("\n}\n") }' > $(BENCH_SHARD_JSON)
	@cat $(BENCH_SHARD_JSON)

# Packed-sequence snapshot: resident-byte ratio of the 2-bit
# representation (ascii/packed must stay ≥ 2), the packing/ingest
# throughput, the word-wise vs byte-loop reverse complement, and the
# packed vs ASCII k-mer extraction (the no-regression pin), recorded
# as BENCH_seq.json so representation regressions show up in review
# diffs. Same awk JSON conversion as bench-chrysalis.
BENCH_SEQ_JSON ?= BENCH_seq.json
bench-seq:
	{ $(GO) test -run '^$$' -bench 'BenchmarkSeq(PackedResidentBytes|Pack$$|RevComp)' -benchtime 1s ./internal/seq/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkKmerIter' -benchtime 1s ./internal/kmer/ ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkDSKCount' -benchtime 1s ./internal/dsk/ ; } \
	| awk 'BEGIN { printf("{\n") } \
	       /^Benchmark/ { if (n++) printf(",\n"); \
	         printf("  \"%s\": {\"iterations\": %s", $$1, $$2); \
	         for (i = 3; i < NF; i += 2) printf(", \"%s\": %s", $$(i+1), $$i); \
	         printf("}") } \
	       END { printf("\n}\n") }' > $(BENCH_SEQ_JSON)
	@cat $(BENCH_SEQ_JSON)

# Packed FM-index snapshot: backward-search and locate throughput of
# the 2-bit packed index vs the ASCII index over the same text (the
# searchx/residentx ratios must stay ≥ 3), plus the parallel
# suffix-array construction sweep (workers=4 must stay > 1.5x faster
# than workers=1), recorded as BENCH_fm.json so index regressions show
# up in review diffs. Same awk JSON conversion as bench-chrysalis.
BENCH_FM_JSON ?= BENCH_fm.json
bench-fm:
	$(GO) test -run '^$$' -bench 'BenchmarkFM(Search|Locate|Resident|Build)' -benchmem -benchtime 1s -timeout 30m ./internal/fm/ \
	| awk 'BEGIN { printf("{\n") } \
	       /^Benchmark/ { if (n++) printf(",\n"); \
	         printf("  \"%s\": {\"iterations\": %s", $$1, $$2); \
	         for (i = 3; i < NF; i += 2) printf(", \"%s\": %s", $$(i+1), $$i); \
	         printf("}") } \
	       END { printf("\n}\n") }' > $(BENCH_FM_JSON)
	@cat $(BENCH_FM_JSON)

# ASCII-decode gate for the packed hot paths: sequence payloads in the
# Chrysalis/Inchworm/Jellyfish/Bowtie packages must stay 2-bit packed —
# any .Decode()/.AppendDecode materialisation needs an explicit
# `ascii-ok: <why>` annotation naming the file/result boundary it
# serves. New unannotated conversions fail the build.
LINT_ASCII_PKGS = internal/chrysalis internal/inchworm internal/jellyfish internal/bowtie internal/fm
lint-ascii:
	@bad=$$(grep -nE '\.Decode\(|\.AppendDecode\(' $$(find $(LINT_ASCII_PKGS) -name '*.go' ! -name '*_test.go') /dev/null | grep -v 'ascii-ok:'; true); \
	if [ -n "$$bad" ]; then \
	  echo "$$bad"; \
	  echo "lint-ascii: sequence payload decoded to ASCII in a packed hot path (annotate '// ascii-ok: <why>' only at a file/result boundary)"; \
	  exit 1; \
	fi
	@echo "lint-ascii: clean"

verify: build lint-ascii
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -race ./internal/core/...
	$(GO) test -race ./internal/shard/... ./internal/mpi/...
	$(GO) test -race ./internal/chrysalis/...
	$(GO) test -race ./internal/seq/... ./internal/dsk/...
	$(GO) test -race ./internal/fm/... ./internal/bowtie/...
	$(GO) test -run '^$$' -bench 'Chrysalis(WithFaultLayer|TraceRecorder)' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'Benchmark($(KERNEL_BENCH))' -benchtime 1x ./internal/chrysalis/ ./internal/jellyfish/
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineTail' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkPipelineStreaming' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkShardScaling' -benchtime 1x .
	$(GO) test -run '^$$' -bench 'BenchmarkSeq(PackedResidentBytes|RevComp)|BenchmarkKmerIter' -benchtime 1x ./internal/seq/ ./internal/kmer/
	$(GO) test -run '^$$' -bench 'BenchmarkFM(Search|Locate|Resident|Build)' -benchtime 1x ./internal/fm/

clean:
	rm -rf bin
