package trinity

import (
	"bytes"
	"strings"
	"testing"

	"gotrinity/internal/sw"
)

func TestFacadeAssemble(t *testing.T) {
	d := GenerateDataset(TinyProfile(3))
	res, err := Assemble(d.Reads, Config{K: 21, ThreadsPerRank: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Transcripts) == 0 {
		t.Fatal("no transcripts")
	}
	recs := res.TranscriptRecords()
	cmp := CompareTranscriptSets(recs, recs, sw.DefaultScoring())
	if cmp.FullIdentical != cmp.Total() {
		t.Errorf("self-comparison not fully identical: %+v", cmp)
	}
}

func TestFacadeHybridMatchesSerial(t *testing.T) {
	d := GenerateDataset(TinyProfile(4))
	serial, err := Assemble(d.Reads, Config{K: 21, ThreadsPerRank: 2})
	if err != nil {
		t.Fatal(err)
	}
	hybrid, err := Assemble(d.Reads, Config{K: 21, ThreadsPerRank: 2, Ranks: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Transcripts) != len(hybrid.Transcripts) {
		t.Errorf("serial %d vs hybrid %d transcripts", len(serial.Transcripts), len(hybrid.Transcripts))
	}
}

func TestFacadeFastaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/reads.fa"
	d := GenerateDataset(TinyProfile(5))
	if err := WriteFasta(path, d.Reads[:10]); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFasta(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 10 {
		t.Errorf("round trip = %d reads", len(back))
	}
}

func TestFacadeFig3(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig3(&buf, 40, 4, 2, 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "round-robin") {
		t.Error("fig3 output missing")
	}
}
